"""Scratch-arena semantics: reuse, growth, isolation, no stale leakage."""

import threading

import numpy as np

from repro.kernels.arena import ScratchArena, get_arena


class TestTake:
    def test_shape_and_dtype(self):
        a = ScratchArena()
        v = a.take("x", (3, 4), np.int64)
        assert v.shape == (3, 4) and v.dtype == np.int64

    def test_scalar_shape(self):
        a = ScratchArena()
        assert a.take("x", 5).shape == (5,)

    def test_same_tag_reuses_buffer(self):
        a = ScratchArena()
        v1 = a.take("x", 64)
        v2 = a.take("x", 64)
        assert v1.base is v2.base  # same backing allocation, no realloc

    def test_distinct_tags_do_not_alias(self):
        a = ScratchArena()
        x = a.take("x", 8, np.int64)
        y = a.take("y", 8, np.int64)
        x[...] = 1
        y[...] = 2
        assert x.sum() == 8 and y.sum() == 16

    def test_growth_preserves_no_stale_reads_when_zeroed(self):
        a = ScratchArena()
        v = a.take("x", 4, np.int64, zero=True)
        v[...] = 7
        # larger request grows the buffer; zero=True must clear all of it
        v2 = a.take("x", 16, np.int64, zero=True)
        assert v2.shape == (16,)
        assert not v2.any()

    def test_growth_is_geometric(self):
        a = ScratchArena()
        a.take("x", 100)
        first = a.nbytes
        a.take("x", 101)  # +1 byte must not realloc to 101
        assert a.nbytes >= 2 * first

    def test_smaller_request_does_not_shrink(self):
        a = ScratchArena()
        a.take("x", 100)
        cap = a.nbytes
        v = a.take("x", 10)
        assert v.shape == (10,) and a.nbytes == cap

    def test_clear_releases(self):
        a = ScratchArena()
        a.take("x", 100)
        a.clear()
        assert a.nbytes == 0 and a.tags == ()

    def test_rejects_negative_dims(self):
        a = ScratchArena()
        try:
            a.take("x", (2, -1))
        except ValueError:
            pass
        else:  # pragma: no cover
            raise AssertionError("negative dim accepted")


class TestAllocationCounter:
    def test_counts_creations_and_growths_only(self):
        a = ScratchArena()
        assert a.allocations == 0
        a.take("x", 100)
        assert a.allocations == 1
        a.take("x", 80)  # fits: no realloc
        a.take("x", 100)
        assert a.allocations == 1
        a.take("x", 500)  # growth
        a.take("y", 10)  # new tag
        assert a.allocations == 3
        a.clear()
        assert a.allocations == 0

    def test_kway_reduce_steady_state_allocates_nothing(self):
        """After one warm-up, the fused k-way path must not touch malloc
        for any arena-served buffer — the roofline push depends on it."""
        from repro.bench.kernels import _make_fields
        from repro.homomorphic.hzdynamic import HZDynamic

        engine = HZDynamic()
        fields = _make_fields(8, 16384)
        arena = get_arena()
        arena.clear()
        warm = engine.reduce_fused(fields)  # warm-up sizes every tag
        baseline = arena.allocations
        assert baseline > 0  # the path really is arena-served
        steady = engine.reduce_fused(fields)
        assert arena.allocations == baseline
        np.testing.assert_array_equal(steady.payload, warm.payload)

    def test_sparse_reduce_steady_state_allocates_nothing(self):
        """The gather strategy's accumulator/decode rows are arena-served
        too; force it by keeping the accumulate class sparse."""
        from repro.bench.kernels import _make_fields
        from repro.homomorphic.hzdynamic import HZDynamic

        engine = HZDynamic()
        fields = _make_fields(2, 16384)
        nb = fields[1].code_lengths.size
        dense_frac = float(
            ((fields[0].code_lengths != 0) & (fields[1].code_lengths != 0)).sum()
        ) / nb
        assert dense_frac < HZDynamic.DENSE_THRESHOLD
        arena = get_arena()
        arena.clear()
        engine.reduce_fused(fields)
        baseline = arena.allocations
        assert baseline > 0
        engine.reduce_fused(fields)
        assert arena.allocations == baseline


class TestNoStaleLeakageThroughKernels:
    def test_repeated_encode_decode_independent(self):
        """Back-to-back kernel calls must not see each other's scratch."""
        from repro.compression.encoding import decode_blocks, encode_blocks

        rng = np.random.default_rng(0)
        big = rng.integers(-(2**20), 2**20, size=(256, 32)).astype(np.int64)
        small = rng.integers(-3, 4, size=(16, 32)).astype(np.int64)
        # large call warms (and dirties) every arena buffer ...
        lens_b, pay_b = encode_blocks(big, 32)
        np.testing.assert_array_equal(decode_blocks(lens_b, pay_b, 32), big)
        # ... the small call right after must be byte-identical to a
        # cold-arena run
        lens_s, pay_s = encode_blocks(small, 32)
        get_arena().clear()
        lens_cold, pay_cold = encode_blocks(small, 32)
        np.testing.assert_array_equal(lens_s, lens_cold)
        np.testing.assert_array_equal(pay_s, pay_cold)

    def test_decode_results_are_fresh_allocations(self):
        """Returned arrays must not alias arena scratch across calls."""
        from repro.compression.encoding import decode_blocks, encode_blocks

        rng = np.random.default_rng(1)
        d1 = rng.integers(-100, 100, size=(64, 32)).astype(np.int64)
        d2 = rng.integers(-100, 100, size=(64, 32)).astype(np.int64)
        lens1, pay1 = encode_blocks(d1, 32)
        lens2, pay2 = encode_blocks(d2, 32)
        out1 = decode_blocks(lens1, pay1, 32)
        snapshot = out1.copy()
        decode_blocks(lens2, pay2, 32)  # second call must not clobber out1
        np.testing.assert_array_equal(out1, snapshot)


class TestThreadLocal:
    def test_get_arena_is_per_thread(self):
        main_arena = get_arena()
        seen = {}

        def worker():
            seen["arena"] = get_arena()

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        assert seen["arena"] is not main_arena

    def test_same_thread_same_arena(self):
        assert get_arena() is get_arena()
