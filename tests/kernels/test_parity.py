"""Backend parity: every backend emits byte-identical streams.

The homomorphic operators and the CRC-validated wire format assume the
fixed-length stream for a given input is *unique* — backend choice is pure
execution policy.  This suite races every available backend (plus the
uncompiled pure-Python scalar loops that the Numba backend JIT-compiles)
against the NumPy reference on randomized inputs and asserts bytewise
equality of payloads and exact equality of decodes.

On hosts without numba the scalar loops still run uncompiled, so the exact
layout the JIT backend would produce is exercised by CI regardless.
"""

import numpy as np
import pytest

from repro.kernels import _kernels_py, dispatch
from repro.kernels.dispatch import available_backends, get_backend

BLOCK_SIZES = (8, 32, 64)


@pytest.fixture(autouse=True)
def fresh_dispatch(monkeypatch):
    monkeypatch.delenv(dispatch.ENV_VAR, raising=False)
    dispatch._reset_for_tests()
    yield
    dispatch._reset_for_tests()


def _random_blocks(rng, nb, bs, max_c=32):
    """Blocks exercising every code length 0..max_c, extremes included."""
    c_target = rng.integers(0, max_c + 1, size=nb)
    deltas = np.zeros((nb, bs), dtype=np.int64)
    for i, c in enumerate(c_target):
        if c == 0:
            continue
        hi = (1 << int(c)) - 1
        row = rng.integers(0, hi + 1, size=bs)
        # force at least one element to need exactly c bits
        row[rng.integers(0, bs)] = rng.integers(1 << (int(c) - 1), hi + 1)
        deltas[i] = row * rng.choice([-1, 1], size=bs)
    return deltas


def _other_backends():
    return [name for name in available_backends() if name != "numpy"]


class TestBackendParity:
    @pytest.mark.parametrize("bs", BLOCK_SIZES)
    def test_all_backends_byte_identical(self, bs):
        rng = np.random.default_rng(bs)
        reference = get_backend("numpy")
        others = [get_backend(name) for name in _other_backends()]
        for trial in range(8):
            nb = int(rng.integers(0, 300))
            deltas = _random_blocks(rng, nb, bs)
            lens, payload, offsets = reference.encode_with_offsets(deltas, bs)
            ref_dec = reference.decode_blocks(lens, payload, bs, offsets=offsets)
            sel = (
                rng.integers(0, nb, size=int(rng.integers(1, 2 * nb)))
                if nb
                else np.zeros(0, dtype=np.int64)
            )
            ref_sel = reference.decode_selected(sel, lens, offsets, payload, bs)
            for backend in others:
                b_lens, b_payload, b_offsets = backend.encode_with_offsets(
                    deltas, bs
                )
                np.testing.assert_array_equal(b_lens, lens)
                np.testing.assert_array_equal(b_payload, payload)
                np.testing.assert_array_equal(b_offsets, offsets)
                np.testing.assert_array_equal(
                    backend.decode_blocks(lens, payload, bs, offsets=offsets),
                    ref_dec,
                )
                np.testing.assert_array_equal(
                    backend.decode_selected(sel, lens, offsets, payload, bs),
                    ref_sel,
                )

    def test_numpy_roundtrip_all_code_lengths(self):
        bs = 32
        reference = get_backend("numpy")
        for c in range(33):
            if c == 0:
                deltas = np.zeros((3, bs), dtype=np.int64)
            else:
                hi = (1 << c) - 1
                deltas = np.full((3, bs), hi, dtype=np.int64)
                deltas[1] = -deltas[1]
                deltas[2, ::2] = 1 << (c - 1)
            lens, payload, offsets = reference.encode_with_offsets(deltas, bs)
            expected_c = 0 if c == 0 else c
            assert int(lens.max(initial=0)) == expected_c
            out = reference.decode_blocks(lens, payload, bs, offsets=offsets)
            np.testing.assert_array_equal(out, deltas)


class TestScalarLoopParity:
    """The uncompiled JIT source must match the NumPy backend bitwise."""

    @pytest.mark.parametrize("bs", BLOCK_SIZES)
    def test_encode_loop_byte_identical(self, bs):
        rng = np.random.default_rng(bs + 1)
        reference = get_backend("numpy")
        deltas = _random_blocks(rng, 60, bs)
        lens, payload, offsets = reference.encode_with_offsets(deltas, bs)
        loop_payload = np.zeros_like(payload)
        _kernels_py.encode_payload_loop(
            np.abs(deltas).astype(np.uint32),
            deltas < 0,
            lens,
            offsets,
            loop_payload,
        )
        np.testing.assert_array_equal(loop_payload, payload)

    @pytest.mark.parametrize("bs", BLOCK_SIZES)
    def test_decode_loop_matches(self, bs):
        rng = np.random.default_rng(bs + 2)
        reference = get_backend("numpy")
        deltas = _random_blocks(rng, 60, bs)
        lens, payload, offsets = reference.encode_with_offsets(deltas, bs)
        out = np.empty((60, bs), dtype=np.int64)
        _kernels_py.decode_into_loop(
            np.arange(60, dtype=np.int64),
            lens,
            offsets,
            payload,
            out,
            np.empty(bs, dtype=np.uint8),
        )
        np.testing.assert_array_equal(out, deltas)
        # unsorted + duplicated subset through the same loop
        sel = rng.integers(0, 60, size=100)
        out_sel = np.empty((100, bs), dtype=np.int64)
        _kernels_py.decode_into_loop(
            sel.astype(np.int64),
            lens,
            offsets,
            payload,
            out_sel,
            np.empty(bs, dtype=np.uint8),
        )
        np.testing.assert_array_equal(out_sel, deltas[sel])


class TestWireFormatUnchanged:
    def test_crc_validated_roundtrip_per_backend(self):
        """Serialise with each backend's stream: CRCs must verify and the
        bytes must agree — the chaos suite's integrity checks depend on
        streams being backend-independent."""
        from repro.compression.format import from_bytes
        from repro.compression.fzlight import FZLight
        from repro.kernels.dispatch import use_backend

        data = np.cumsum(
            np.random.default_rng(5).standard_normal(4096)
        ).astype(np.float32)
        comp = FZLight()
        blobs = {}
        for name in available_backends():
            with use_backend(name):
                field = comp.compress(data, rel_eb=1e-3)
                blobs[name] = field.to_bytes()
        reference = blobs.pop("numpy")
        for name, blob in blobs.items():
            assert blob == reference, name
        restored = from_bytes(reference)
        out = comp.decompress(restored)
        assert np.max(np.abs(out - data)) <= restored.error_bound
