"""Backend registry/dispatch: resolution policy, fallback, scoping."""

import sys

import numpy as np
import pytest

from repro.kernels import dispatch
from repro.kernels.dispatch import (
    ENV_VAR,
    KernelBackend,
    available_backends,
    backend_status,
    current_backend_name,
    get_backend,
    register_backend,
    set_backend,
    use_backend,
)


@pytest.fixture(autouse=True)
def fresh_dispatch(monkeypatch):
    """Each test drives discovery from scratch and leaves no override."""
    monkeypatch.delenv(ENV_VAR, raising=False)
    dispatch._reset_for_tests()
    yield
    dispatch._reset_for_tests()


class TestDiscovery:
    def test_numpy_always_available(self):
        assert "numpy" in available_backends()

    def test_status_reports_every_builtin(self):
        status = backend_status()
        assert set(status) >= {"numpy", "numba", "cupy"}
        assert status["numpy"] == "ok"

    def test_auto_prefers_numba_else_numpy(self):
        name = current_backend_name()
        if "numba" in available_backends():
            assert name == "numba"
        else:
            assert name == "numpy"

    def test_cupy_is_never_auto_selected(self, monkeypatch):
        # even if cupy loaded, "auto" must resolve to numba/numpy only
        monkeypatch.delenv(dispatch.ENV_VAR, raising=False)
        assert current_backend_name() in ("numba", "numpy")


class TestNumbaAbsentFallback:
    def test_auto_falls_back_to_numpy_when_numba_hidden(self, monkeypatch):
        """The acceptance-criteria test: hide the import, nothing breaks."""
        monkeypatch.setitem(sys.modules, "numba", None)  # import -> ImportError
        monkeypatch.delitem(
            sys.modules, "repro.kernels.numba_backend", raising=False
        )
        dispatch._reset_for_tests()
        assert "numba" not in available_backends()
        assert "numba" in backend_status()  # error message recorded
        assert current_backend_name() == "numpy"
        # the whole encode path still works through the fallback
        from repro.compression.encoding import decode_blocks, encode_blocks

        deltas = np.arange(64, dtype=np.int64).reshape(2, 32) - 20
        lens, payload = encode_blocks(deltas, 32)
        np.testing.assert_array_equal(decode_blocks(lens, payload, 32), deltas)

    def test_requesting_hidden_backend_is_explicit_error(self, monkeypatch):
        monkeypatch.setitem(sys.modules, "numba", None)
        monkeypatch.delitem(
            sys.modules, "repro.kernels.numba_backend", raising=False
        )
        dispatch._reset_for_tests()
        with pytest.raises(ValueError, match="numba"):
            get_backend("numba")


class TestResolutionPolicy:
    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "numpy")
        assert current_backend_name() == "numpy"

    def test_set_backend_overrides_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "nonexistent")
        set_backend("numpy")
        assert current_backend_name() == "numpy"

    def test_set_backend_none_restores_policy(self):
        set_backend("numpy")
        set_backend(None)
        assert current_backend_name() in available_backends()

    def test_set_backend_validates_eagerly(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            set_backend("not-a-backend")

    def test_unknown_name_lists_available(self):
        with pytest.raises(ValueError, match="available"):
            get_backend("not-a-backend")

    def test_whitespace_only_env_means_auto(self, monkeypatch):
        # regression: "   " used to fall through as the (unknown) empty
        # backend name instead of the auto policy
        monkeypatch.setenv(ENV_VAR, "   ")
        assert current_backend_name() in available_backends()

    def test_env_value_is_stripped(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "  numpy\t")
        assert current_backend_name() == "numpy"

    def test_use_backend_scopes_and_restores(self):
        before = current_backend_name()
        with use_backend("numpy") as backend:
            assert backend.name == "numpy"
            assert current_backend_name() == "numpy"
        assert current_backend_name() == before

    def test_use_backend_none_defers_to_ambient(self):
        with use_backend(None):
            assert current_backend_name() in available_backends()

    def test_use_backend_beats_set_backend_inside_scope(self):
        set_backend("numpy")
        with use_backend("numpy"):
            assert current_backend_name() == "numpy"


class TestRegistry:
    def test_register_custom_backend(self):
        numpy_backend = get_backend("numpy")
        custom = KernelBackend(
            name="custom",
            encode_blocks=numpy_backend.encode_blocks,
            encode_with_offsets=numpy_backend.encode_with_offsets,
            decode_blocks=numpy_backend.decode_blocks,
            decode_selected=numpy_backend.decode_selected,
        )
        register_backend(custom)
        assert "custom" in available_backends()
        assert get_backend("custom") is custom

    def test_custom_backend_gets_fused_fallbacks(self):
        """Omitted fused entry points are filled from the backend's own
        kernels, so HZDynamic can call them unconditionally."""
        numpy_backend = get_backend("numpy")
        custom = KernelBackend(
            name="custom-fallback",
            encode_blocks=numpy_backend.encode_blocks,
            encode_with_offsets=numpy_backend.encode_with_offsets,
            decode_blocks=numpy_backend.decode_blocks,
            decode_selected=numpy_backend.decode_selected,
        )
        assert custom.classify_encode is custom.encode_with_offsets
        deltas = np.arange(64, dtype=np.int64).reshape(2, 32) - 20
        lens, payload, offsets = custom.classify_encode(deltas, 32)
        out = custom.reduce_fused(
            np.stack([lens, lens]),
            np.stack([offsets, offsets]),
            [payload, payload],
            np.ones(2, dtype=np.int64),
            32,
            track=True,
        )
        exp_lens, exp_payload, _ = numpy_backend.encode_with_offsets(
            2 * deltas, 32
        )
        np.testing.assert_array_equal(out[0], exp_lens)
        np.testing.assert_array_equal(out[1], exp_payload)
        assert out[3].shape == (2, 2)

    def test_every_resolved_backend_has_full_surface(self):
        for name in available_backends():
            backend = get_backend(name)
            assert callable(backend.classify_encode), name
            assert callable(backend.reduce_fused), name


class TestConfigAndCLIWiring:
    def test_collective_config_field(self):
        from repro.core.config import CollectiveConfig

        config = CollectiveConfig(kernel_backend="numpy")
        assert config.kernel_backend == "numpy"
        with pytest.raises(ValueError):
            CollectiveConfig(kernel_backend="")

    def test_facade_respects_config_backend(self):
        from repro.core.api import HZCCL
        from repro.core.config import CollectiveConfig

        lib = HZCCL(CollectiveConfig(kernel_backend="numpy"))
        data = np.sin(np.linspace(0, 9, 2048)).astype(np.float32)
        field = lib.compress(data)
        out = lib.decompress(field)
        assert np.max(np.abs(out - data)) <= field.error_bound

    def test_facade_rejects_unknown_backend_on_use(self):
        from repro.core.api import HZCCL
        from repro.core.config import CollectiveConfig

        lib = HZCCL(CollectiveConfig(kernel_backend="not-a-backend"))
        with pytest.raises(ValueError, match="unknown kernel backend"):
            lib.compress(np.zeros(64, dtype=np.float32))

    def test_cli_global_flag(self, capsys):
        from repro.cli import main

        assert main(["--kernel-backend", "numpy", "info"]) == 0
        out = capsys.readouterr().out
        assert "active: numpy" in out
