"""Tests for the plain (MPI-baseline) ring collectives."""

import numpy as np
import pytest

from repro.collectives import (
    mpi_allgather,
    mpi_allreduce,
    mpi_reduce_scatter,
    split_blocks,
    validate_local_data,
)
from repro.runtime.cluster import SimCluster
from repro.runtime.topology import Ring


def make_cluster(n, fast_network):
    return SimCluster(n_ranks=n, network=fast_network)


def rank_data(rng, n_ranks, n=10_007):
    return [rng.normal(0, 1, n).astype(np.float32) for _ in range(n_ranks)]


def exact_total(local):
    return np.sum(np.stack(local).astype(np.float64), axis=0)


class TestHelpers:
    def test_split_blocks_lengths(self):
        blocks = split_blocks(np.arange(10), 3)
        assert [b.size for b in blocks] == [4, 3, 3]

    def test_split_blocks_same_index_same_length_across_ranks(self):
        a = split_blocks(np.arange(10), 3)
        b = split_blocks(np.arange(10) * 2, 3)
        assert [x.size for x in a] == [x.size for x in b]

    def test_validate_rejects_mismatched(self):
        with pytest.raises(ValueError):
            validate_local_data([np.zeros(3), np.zeros(4)])

    def test_validate_rejects_empty_list(self):
        with pytest.raises(ValueError):
            validate_local_data([])


class TestReduceScatter:
    @pytest.mark.parametrize("n_ranks", [2, 3, 5, 8])
    def test_correct_sums(self, rng, fast_network, n_ranks):
        local = rank_data(rng, n_ranks)
        cluster = make_cluster(n_ranks, fast_network)
        res = mpi_reduce_scatter(cluster, local)
        exact = exact_total(local)
        ring = Ring(n_ranks)
        blocks = split_blocks(exact, n_ranks)
        for i in range(n_ranks):
            np.testing.assert_allclose(
                res.outputs[i], blocks[ring.owned_block(i)], rtol=1e-5, atol=1e-4
            )

    def test_wrong_rank_count_rejected(self, rng, fast_network):
        with pytest.raises(ValueError, match="rank"):
            mpi_reduce_scatter(make_cluster(4, fast_network), rank_data(rng, 3))

    def test_only_cpt_and_mpi_buckets(self, rng, fast_network):
        res = mpi_reduce_scatter(make_cluster(4, fast_network), rank_data(rng, 4))
        bd = res.breakdown
        assert bd.buckets["CPR"] == 0
        assert bd.buckets["DPR"] == 0
        assert bd.buckets["HPR"] == 0
        assert bd.buckets["CPT"] > 0
        assert bd.buckets["MPI"] > 0

    def test_bytes_on_wire(self, rng, fast_network):
        n_ranks, n = 4, 1000
        res = mpi_reduce_scatter(make_cluster(n_ranks, fast_network), rank_data(rng, n_ranks, n))
        assert res.bytes_on_wire == pytest.approx(n * 4 * (n_ranks - 1), rel=0.01)


class TestAllgather:
    def test_gathers_in_block_order(self, fast_network):
        n_ranks = 4
        ring = Ring(n_ranks)
        # chunk i is what rank i contributes = block owned_block(i)
        chunks = [None] * n_ranks
        for i in range(n_ranks):
            chunks[i] = np.full(5, float(ring.owned_block(i)), dtype=np.float32)
        res = mpi_allgather(make_cluster(n_ranks, fast_network), chunks)
        expected = np.concatenate(
            [np.full(5, float(k), dtype=np.float32) for k in range(n_ranks)]
        )
        for out in res.outputs:
            np.testing.assert_array_equal(out, expected)

    def test_wrong_chunk_count(self, fast_network):
        with pytest.raises(ValueError):
            mpi_allgather(make_cluster(3, fast_network), [np.zeros(2)] * 2)


class TestAllreduce:
    @pytest.mark.parametrize("n_ranks", [2, 4, 7])
    def test_all_ranks_identical_and_correct(self, rng, fast_network, n_ranks):
        local = rank_data(rng, n_ranks)
        res = mpi_allreduce(make_cluster(n_ranks, fast_network), local)
        exact = exact_total(local)
        for out in res.outputs:
            np.testing.assert_allclose(out, exact, rtol=1e-5, atol=1e-4)

    def test_wire_bytes_double_reduce_scatter(self, rng, fast_network):
        local = rank_data(rng, 4, 1000)
        rs = mpi_reduce_scatter(make_cluster(4, fast_network), local)
        ar = mpi_allreduce(make_cluster(4, fast_network), local)
        assert ar.bytes_on_wire == pytest.approx(2 * rs.bytes_on_wire, rel=0.02)

    def test_time_grows_with_data(self, rng, fast_network):
        small = mpi_allreduce(make_cluster(4, fast_network), rank_data(rng, 4, 1000))
        big = mpi_allreduce(make_cluster(4, fast_network), rank_data(rng, 4, 100_000))
        assert big.total_time > small.total_time
