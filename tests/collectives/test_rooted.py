"""Tests for the root-based collectives (Reduce, Bcast)."""

import numpy as np
import pytest

from repro.collectives import (
    compressed_bcast,
    hzccl_reduce,
    hzccl_reduce_direct,
    mpi_bcast,
    mpi_reduce,
)
from repro.compression.common import dequantize, quantize
from repro.core.config import CollectiveConfig
from repro.runtime.cluster import SimCluster


def rank_data(rng, n, size=6007):
    return [rng.normal(0, 1, size).astype(np.float32) for _ in range(n)]


@pytest.fixture()
def config(fast_network):
    return CollectiveConfig(error_bound=1e-4, network=fast_network)


class TestMpiReduce:
    @pytest.mark.parametrize("root", [0, 2])
    def test_root_gets_full_sum(self, rng, fast_network, root):
        local = rank_data(rng, 4)
        res = mpi_reduce(SimCluster(4, network=fast_network), local, root=root)
        exact = np.sum(np.stack(local).astype(np.float64), axis=0)
        assert np.abs(res.outputs[root].astype(np.float64) - exact).max() < 1e-3

    def test_non_root_gets_nothing(self, rng, fast_network):
        local = rank_data(rng, 4)
        res = mpi_reduce(SimCluster(4, network=fast_network), local, root=1)
        assert res.outputs[0] is None
        assert res.outputs[1] is not None

    def test_bad_root(self, rng, fast_network):
        with pytest.raises(IndexError):
            mpi_reduce(SimCluster(4, network=fast_network), rank_data(rng, 4), root=4)


class TestHzcclReduce:
    def test_matches_integer_oracle(self, rng, fast_network, config):
        local = rank_data(rng, 4)
        res = hzccl_reduce(SimCluster(4, network=fast_network), local, config, root=0)
        eb = config.error_bound
        oracle = dequantize(
            sum(quantize(a, eb).astype(np.int64) for a in local), eb
        )
        np.testing.assert_array_equal(res.outputs[0], oracle)

    def test_only_root_pays_decompression(self, rng, fast_network, config):
        """The structural claim: non-root ranks never decompress."""
        cluster = SimCluster(4, network=fast_network)
        hzccl_reduce(cluster, rank_data(rng, 4), config, root=2)
        for i in range(4):
            dpr = cluster.clocks[i].buckets["DPR"]
            if i == 2:
                assert dpr > 0
            else:
                assert dpr == 0

    def test_fewer_bytes_than_mpi(self, rng, fast_network, config):
        local = rank_data(rng, 4)
        hz = hzccl_reduce(SimCluster(4, network=fast_network), local, config)
        mpi = mpi_reduce(SimCluster(4, network=fast_network), local)
        assert hz.bytes_on_wire < mpi.bytes_on_wire

    def test_pipeline_stats_present(self, rng, fast_network, config):
        res = hzccl_reduce(SimCluster(4, network=fast_network), rank_data(rng, 4), config)
        assert res.pipeline_stats is not None


class TestHzcclReduceDirect:
    @pytest.mark.parametrize("n", [2, 5, 8])
    def test_matches_integer_oracle(self, rng, fast_network, config, n):
        local = rank_data(rng, n)
        res = hzccl_reduce_direct(
            SimCluster(n, network=fast_network), local, config, root=0
        )
        eb = config.error_bound
        oracle = dequantize(sum(quantize(a, eb).astype(np.int64) for a in local), eb)
        np.testing.assert_array_equal(res.outputs[0], oracle)

    def test_matches_ring_reduce(self, rng, fast_network, config):
        """Same quantisation, exact integer folds → identical root result."""
        local = rank_data(rng, 4)
        direct = hzccl_reduce_direct(
            SimCluster(4, network=fast_network), local, config, root=0
        )
        ring = hzccl_reduce(SimCluster(4, network=fast_network), local, config, root=0)
        np.testing.assert_array_equal(direct.outputs[0], ring.outputs[0])

    def test_non_root_outputs_none(self, rng, fast_network, config):
        res = hzccl_reduce_direct(
            SimCluster(4, network=fast_network), rank_data(rng, 4), config, root=2
        )
        assert res.outputs[2] is not None
        assert all(res.outputs[i] is None for i in (0, 1, 3))

    def test_one_fused_kway_fold(self, rng, fast_network, config):
        """The root folds all N operands in a single fused invocation."""
        res = hzccl_reduce_direct(
            SimCluster(6, network=fast_network), rank_data(rng, 6), config
        )
        assert res.pipeline_stats is not None
        assert res.pipeline_stats.fused_calls == 1
        assert res.pipeline_stats.fused_operands == 6
        assert res.pipeline_stats.mean_fanin == 6.0

    def test_only_root_pays_homomorphic_work(self, rng, fast_network, config):
        cluster = SimCluster(4, network=fast_network)
        hzccl_reduce_direct(cluster, rank_data(rng, 4), config, root=1)
        for i in range(4):
            hpr = cluster.clocks[i].buckets["HPR"]
            dpr = cluster.clocks[i].buckets["DPR"]
            if i == 1:
                assert hpr > 0 and dpr > 0
            else:
                assert hpr == 0 and dpr == 0

    def test_bad_root(self, rng, fast_network, config):
        with pytest.raises(IndexError):
            hzccl_reduce_direct(
                SimCluster(4, network=fast_network), rank_data(rng, 4), config, root=4
            )


class TestBcast:
    def test_mpi_bcast_all_ranks_identical(self, rng, fast_network):
        data = rng.normal(0, 1, 5000).astype(np.float32)
        res = mpi_bcast(SimCluster(5, network=fast_network), data)
        for out in res.outputs:
            np.testing.assert_array_equal(out, data)

    def test_mpi_bcast_log_rounds_wire(self, rng, fast_network):
        data = rng.normal(0, 1, 1000).astype(np.float32)
        res = mpi_bcast(SimCluster(8, network=fast_network), data)
        # binomial tree: exactly N−1 copies move in total
        assert res.bytes_on_wire == 7 * data.nbytes

    def test_compressed_bcast_error_bounded(self, rng, fast_network, config):
        data = np.cumsum(rng.normal(0, 0.05, 20_000)).astype(np.float32)
        res = compressed_bcast(SimCluster(4, network=fast_network), data, config)
        for i, out in enumerate(res.outputs):
            if i == 0:
                np.testing.assert_array_equal(out, data)  # root keeps exact
            else:
                assert np.abs(out - data).max() <= config.error_bound * 1.01

    def test_compressed_bcast_fewer_bytes(self, rng, fast_network, config):
        data = np.cumsum(rng.normal(0, 0.05, 20_000)).astype(np.float32)
        cb = compressed_bcast(SimCluster(8, network=fast_network), data, config)
        mb = mpi_bcast(SimCluster(8, network=fast_network), data)
        assert cb.bytes_on_wire < mb.bytes_on_wire

    def test_compressed_bcast_one_cpr(self, rng, fast_network, config):
        data = rng.normal(0, 1, 5000).astype(np.float32)
        cluster = SimCluster(4, network=fast_network)
        compressed_bcast(cluster, data, config, root=1)
        assert cluster.clocks[1].buckets["CPR"] > 0
        for i in (0, 2, 3):
            assert cluster.clocks[i].buckets["CPR"] == 0
            assert cluster.clocks[i].buckets["DPR"] > 0
