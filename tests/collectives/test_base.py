"""Tests for the shared collective helpers and result types."""

import numpy as np
import pytest

from repro.collectives.base import (
    CollectiveResult,
    split_blocks,
    validate_local_data,
)
from repro.runtime.clock import Breakdown


class TestValidateLocalData:
    def test_casts_to_float32(self):
        out = validate_local_data([np.arange(4, dtype=np.float64)])
        assert out[0].dtype == np.float32

    def test_flattens(self):
        out = validate_local_data([np.ones((2, 3), dtype=np.float32)])
        assert out[0].shape == (6,)

    def test_contiguous(self):
        strided = np.ones(20, dtype=np.float32)[::2]
        out = validate_local_data([strided])
        assert out[0].flags["C_CONTIGUOUS"]

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            validate_local_data([np.ones(3), np.ones(4)])

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            validate_local_data([])


class TestSplitBlocks:
    @pytest.mark.parametrize("n,k", [(10, 3), (7, 7), (100, 1), (5, 8)])
    def test_cover_and_order(self, n, k):
        data = np.arange(n, dtype=np.float32)
        blocks = split_blocks(data, k)
        assert len(blocks) == k
        np.testing.assert_array_equal(np.concatenate(blocks), data)

    def test_block_sizes_differ_by_at_most_one(self):
        sizes = [b.size for b in split_blocks(np.arange(100), 7)]
        assert max(sizes) - min(sizes) <= 1

    def test_blocks_are_contiguous(self):
        for block in split_blocks(np.arange(50, dtype=np.float32), 4):
            assert block.flags["C_CONTIGUOUS"]


class TestCollectiveResult:
    def test_total_time_delegates_to_breakdown(self):
        res = CollectiveResult(
            outputs=[np.zeros(1)],
            breakdown=Breakdown(total_time=1.25),
        )
        assert res.total_time == 1.25

    def test_defaults(self):
        res = CollectiveResult(outputs=[], breakdown=Breakdown())
        assert res.bytes_on_wire == 0
        assert res.pipeline_stats is None
