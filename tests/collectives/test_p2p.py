"""Cross-validation: message-level collectives vs round-synchronous ones."""

import numpy as np
import pytest

from repro.collectives import (
    hzccl_allreduce,
    mpi_reduce_scatter,
    p2p_allreduce,
    p2p_hzccl_allreduce,
    p2p_reduce_scatter,
)
from repro.core.config import CollectiveConfig
from repro.runtime.cluster import SimCluster
from repro.runtime.communicator import Communicator
from repro.runtime.network import NetworkModel

NET = NetworkModel(latency_s=1e-6, bandwidth_Bps=1e9, congestion_per_log2=0.1)


def rank_data(rng, n, size=6007):
    return [rng.normal(0, 1, size).astype(np.float32) for _ in range(n)]


class TestPlainP2P:
    @pytest.mark.parametrize("n", [2, 3, 5])
    def test_reduce_scatter_matches_bulk(self, rng, n):
        local = rank_data(rng, n)
        p2p = p2p_reduce_scatter(Communicator(n, network=NET), local)
        bulk = mpi_reduce_scatter(SimCluster(n, network=NET), local).outputs
        for a, b in zip(p2p, bulk):
            np.testing.assert_array_equal(a, b)

    def test_allreduce_correct(self, rng):
        local = rank_data(rng, 4)
        outs = p2p_allreduce(Communicator(4, network=NET), local)
        exact = np.sum(np.stack(local).astype(np.float64), axis=0)
        for out in outs:
            assert np.abs(out.astype(np.float64) - exact).max() < 1e-3

    def test_wrong_rank_count(self, rng):
        with pytest.raises(ValueError):
            p2p_reduce_scatter(Communicator(3, network=NET), rank_data(rng, 4))

    def test_no_messages_left_behind(self, rng):
        comm = Communicator(4, network=NET)
        p2p_allreduce(comm, rank_data(rng, 4))
        assert all(comm.pending(i) == 0 for i in range(4))


class TestHzcclP2P:
    @pytest.mark.parametrize("n", [2, 4, 6])
    def test_bitwise_matches_bulk_synchronous(self, rng, n):
        """The two formulations are independent implementations of the same
        algorithm — they must agree bit for bit."""
        local = rank_data(rng, n)
        config = CollectiveConfig(error_bound=1e-4, network=NET)
        p2p = p2p_hzccl_allreduce(Communicator(n, network=NET), local, config)
        bulk = hzccl_allreduce(SimCluster(n, network=NET), local, config).outputs
        for a, b in zip(p2p, bulk):
            np.testing.assert_array_equal(a, b)

    def test_all_ranks_identical(self, rng):
        local = rank_data(rng, 4)
        config = CollectiveConfig(error_bound=1e-4, network=NET)
        outs = p2p_hzccl_allreduce(Communicator(4, network=NET), local, config)
        for out in outs[1:]:
            np.testing.assert_array_equal(out, outs[0])

    def test_makespan_positive_and_causal(self, rng):
        local = rank_data(rng, 4)
        config = CollectiveConfig(error_bound=1e-4, network=NET)
        comm = Communicator(4, network=NET)
        p2p_hzccl_allreduce(comm, local, config)
        # every rank participated through all rounds, so no clock is zero
        assert min(comm.clocks) > 0
        assert comm.makespan >= max(comm.clocks) - 1e-12

    def test_compressed_bytes_on_wire(self, rng):
        local = rank_data(rng, 4)
        config = CollectiveConfig(error_bound=1e-2, network=NET)
        comm = Communicator(4, network=NET)
        p2p_hzccl_allreduce(comm, local, config)
        raw = sum(a.nbytes for a in local)
        # ring allreduce moves ~2x the data; compressed must beat raw 2x
        assert sum(comm.bytes_sent) < 2 * raw
