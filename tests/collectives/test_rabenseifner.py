"""Tests for Rabenseifner's recursive halving/doubling Allreduce."""

import numpy as np
import pytest

from repro.collectives import (
    hzccl_allreduce,
    hzccl_rabenseifner_allreduce,
    mpi_allreduce,
    rabenseifner_allreduce,
)
from repro.core.config import CollectiveConfig
from repro.runtime.cluster import SimCluster
from repro.runtime.network import NetworkModel

NET = NetworkModel(latency_s=1e-6, bandwidth_Bps=1e9, congestion_per_log2=0.1)


def rank_data(rng, n, size=8003):
    return [rng.normal(0, 1, size).astype(np.float32) for _ in range(n)]


@pytest.fixture()
def config():
    return CollectiveConfig(error_bound=1e-4, network=NET)


class TestPlain:
    @pytest.mark.parametrize("n", [2, 4, 8, 16])
    def test_correct_sums(self, rng, n):
        local = rank_data(rng, n)
        exact = np.sum(np.stack(local).astype(np.float64), axis=0)
        res = rabenseifner_allreduce(SimCluster(n, network=NET), local)
        for out in res.outputs:
            assert np.abs(out.astype(np.float64) - exact).max() < 2e-3

    def test_matches_ring_allreduce(self, rng):
        """Same reduction, different schedule: results agree to float32
        associativity noise."""
        local = rank_data(rng, 8)
        rab = rabenseifner_allreduce(SimCluster(8, network=NET), local)
        ring = mpi_allreduce(SimCluster(8, network=NET), local)
        np.testing.assert_allclose(rab.outputs[0], ring.outputs[0], rtol=1e-5, atol=1e-4)

    @pytest.mark.parametrize("n", [1, 3, 6, 12])
    def test_rejects_non_power_of_two(self, rng, n):
        with pytest.raises(ValueError, match="power-of-two"):
            rabenseifner_allreduce(SimCluster(n, network=NET), rank_data(rng, n, 64))

    def test_moves_same_volume_as_ring(self, rng):
        """Recursive halving/doubling is bandwidth-optimal too: ~2·(N−1)/N
        of the data per rank, like the ring."""
        n, size = 8, 8000
        local = rank_data(rng, n, size)
        rab = rabenseifner_allreduce(SimCluster(n, network=NET), local)
        ring = mpi_allreduce(SimCluster(n, network=NET), local)
        assert rab.bytes_on_wire == pytest.approx(ring.bytes_on_wire, rel=0.02)

    def test_fewer_rounds_less_latency(self, rng):
        """2·log2 N rounds vs 2·(N−1): with a latency-dominated network the
        Rabenseifner schedule must finish sooner."""
        n = 16
        latency_net = NetworkModel(
            latency_s=1e-3, bandwidth_Bps=1e12, congestion_per_log2=0
        )
        local = rank_data(rng, n, 1600)
        rab = rabenseifner_allreduce(SimCluster(n, network=latency_net), local)
        ring = mpi_allreduce(SimCluster(n, network=latency_net), local)
        assert rab.total_time < ring.total_time


class TestHomomorphic:
    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_bitwise_matches_ring_hzccl(self, rng, config, n):
        """Associativity of integer addition: the compressed result is
        byte-identical no matter which schedule folded it."""
        local = rank_data(rng, n)
        rab = hzccl_rabenseifner_allreduce(SimCluster(n, network=NET), local, config)
        ring = hzccl_allreduce(SimCluster(n, network=NET), local, config)
        for a, b in zip(rab.outputs, ring.outputs):
            np.testing.assert_array_equal(a, b)

    def test_buckets(self, rng, config):
        res = hzccl_rabenseifner_allreduce(SimCluster(4, network=NET), rank_data(rng, 4), config)
        bd = res.breakdown
        assert bd.buckets["CPR"] > 0
        assert bd.buckets["HPR"] > 0
        assert bd.buckets["DPR"] > 0
        assert bd.buckets["CPT"] == 0

    def test_compressed_volume_smaller(self, rng, config):
        local = [
            np.cumsum(rng.normal(0, 0.05, 8003)).astype(np.float32) for _ in range(4)
        ]
        hz = hzccl_rabenseifner_allreduce(SimCluster(4, network=NET), local, config)
        plain = rabenseifner_allreduce(SimCluster(4, network=NET), local)
        assert hz.bytes_on_wire < plain.bytes_on_wire

    def test_rejects_non_power_of_two(self, rng, config):
        with pytest.raises(ValueError, match="power-of-two"):
            hzccl_rabenseifner_allreduce(
                SimCluster(6, network=NET), rank_data(rng, 6, 64), config
            )

    def test_pipeline_stats(self, rng, config):
        res = hzccl_rabenseifner_allreduce(SimCluster(4, network=NET), rank_data(rng, 4), config)
        assert res.pipeline_stats is not None
        assert res.pipeline_stats.total > 0
