"""Tests for the hZCCL homomorphic collectives."""

import numpy as np
import pytest

from repro.collectives import (
    ccoll_reduce_scatter,
    hzccl_allgather_compressed,
    hzccl_allreduce,
    hzccl_reduce_scatter,
    split_blocks,
)
from repro.compression.common import dequantize, quantize
from repro.compression.format import CompressedField
from repro.runtime.cluster import SimCluster
from repro.runtime.topology import Ring


def rank_data(rng, n_ranks, n=10_007):
    return [np.cumsum(rng.normal(0, 0.05, n)).astype(np.float32) for _ in range(n_ranks)]


def quantised_exact_blocks(local, eb, n_ranks):
    """Oracle: per-block dequantised integer sums (hZCCL is exact here)."""
    blocks = [split_blocks(a, n_ranks) for a in local]
    out = []
    for k in range(n_ranks):
        total = sum(quantize(blocks[i][k], eb).astype(np.int64) for i in range(len(local)))
        out.append(dequantize(total, eb))
    return out


class TestReduceScatter:
    @pytest.mark.parametrize("n_ranks", [2, 3, 4, 8])
    def test_matches_integer_oracle(self, rng, fast_network, config, n_ranks):
        """hZCCL reduces in the integer domain — bit-exact vs the oracle."""
        local = rank_data(rng, n_ranks)
        res = hzccl_reduce_scatter(SimCluster(n_ranks, network=fast_network), local, config)
        oracle = quantised_exact_blocks(local, config.error_bound, n_ranks)
        ring = Ring(n_ranks)
        for i in range(n_ranks):
            np.testing.assert_array_equal(res.outputs[i], oracle[ring.owned_block(i)])

    def test_single_quantisation_error_bound(self, rng, fast_network, config):
        n_ranks = 6
        local = rank_data(rng, n_ranks)
        res = hzccl_reduce_scatter(SimCluster(n_ranks, network=fast_network), local, config)
        exact = np.sum(np.stack(local).astype(np.float64), axis=0)
        ring = Ring(n_ranks)
        blocks = split_blocks(exact, n_ranks)
        for i in range(n_ranks):
            err = np.abs(
                res.outputs[i].astype(np.float64) - blocks[ring.owned_block(i)]
            ).max()
            assert err <= n_ranks * config.error_bound * 1.001

    def test_accuracy_comparable_to_ccoll(self, rng, fast_network, config):
        """The paper's claim is that hZCCL *maintains* accuracy: its RMS
        error must be in the same band as C-Coll's (both are dominated by
        the N independent input quantisations; per-round requantisation
        noise roughly cancels in C-Coll)."""
        n_ranks = 8
        local = rank_data(rng, n_ranks)
        exact = np.sum(np.stack(local).astype(np.float64), axis=0)
        blocks = split_blocks(exact, n_ranks)
        ring = Ring(n_ranks)

        def rms(res):
            errs = np.concatenate(
                [
                    res.outputs[i].astype(np.float64) - blocks[ring.owned_block(i)]
                    for i in range(n_ranks)
                ]
            )
            return float(np.sqrt(np.mean(errs**2)))

        hz = hzccl_reduce_scatter(SimCluster(n_ranks, network=fast_network), local, config)
        cc = ccoll_reduce_scatter(SimCluster(n_ranks, network=fast_network), local, config)
        assert rms(hz) <= rms(cc) * 1.25
        assert rms(hz) <= n_ranks * config.error_bound  # and absolutely bounded

    def test_return_compressed(self, rng, fast_network, config):
        local = rank_data(rng, 4)
        res = hzccl_reduce_scatter(
            SimCluster(4, network=fast_network), local, config, return_compressed=True
        )
        assert all(isinstance(o, CompressedField) for o in res.outputs)

    def test_buckets(self, rng, fast_network, config):
        res = hzccl_reduce_scatter(SimCluster(4, network=fast_network), rank_data(rng, 4), config)
        bd = res.breakdown
        assert bd.buckets["CPR"] > 0
        assert bd.buckets["HPR"] > 0
        assert bd.buckets["DPR"] > 0
        assert bd.buckets["CPT"] == 0  # never touches the float domain

    def test_pipeline_stats_present(self, rng, fast_network, config):
        res = hzccl_reduce_scatter(SimCluster(4, network=fast_network), rank_data(rng, 4), config)
        assert res.pipeline_stats is not None
        assert res.pipeline_stats.total > 0


class TestAllgatherCompressed:
    def test_gathers_and_decompresses(self, rng, fast_network, config):
        from repro.compression.fzlight import FZLight

        n_ranks = 4
        comp = FZLight(block_size=config.block_size, n_threadblocks=config.n_threadblocks)
        ring = Ring(n_ranks)
        payloads = [rng.normal(0, 1, 500).astype(np.float32) for _ in range(n_ranks)]
        chunks = [comp.compress(p, abs_eb=config.error_bound) for p in payloads]
        res = hzccl_allgather_compressed(
            SimCluster(n_ranks, network=fast_network), chunks, config
        )
        expected = np.concatenate(
            [comp.decompress(chunks[[r for r in range(n_ranks) if ring.owned_block(r) == k][0]])
             for k in range(n_ranks)]
        )
        for out in res.outputs:
            np.testing.assert_array_equal(out, expected)

    def test_no_cpr_charged(self, rng, fast_network, config):
        from repro.compression.fzlight import FZLight

        comp = FZLight(block_size=config.block_size, n_threadblocks=config.n_threadblocks)
        chunks = [
            comp.compress(rng.normal(0, 1, 300).astype(np.float32), abs_eb=config.error_bound)
            for _ in range(3)
        ]
        res = hzccl_allgather_compressed(SimCluster(3, network=fast_network), chunks, config)
        assert res.breakdown.buckets["CPR"] == 0  # the fused optimisation


class TestAllreduce:
    @pytest.mark.parametrize("n_ranks", [2, 4, 8])
    def test_matches_integer_oracle(self, rng, fast_network, config, n_ranks):
        local = rank_data(rng, n_ranks)
        res = hzccl_allreduce(SimCluster(n_ranks, network=fast_network), local, config)
        eb = config.error_bound
        oracle = dequantize(
            sum(quantize(a, eb).astype(np.int64) for a in local), eb
        )
        for out in res.outputs:
            np.testing.assert_array_equal(out, oracle)

    def test_all_ranks_bitwise_identical(self, rng, fast_network, config):
        """Unlike C-Coll, every rank decompresses the same compressed
        blocks, so outputs agree bit-for-bit."""
        local = rank_data(rng, 4)
        res = hzccl_allreduce(SimCluster(4, network=fast_network), local, config)
        for out in res.outputs[1:]:
            np.testing.assert_array_equal(out, res.outputs[0])

    def test_sends_fewer_bytes_than_uncompressed(self, rng, fast_network, config):
        from repro.collectives import mpi_allreduce

        local = rank_data(rng, 4)
        hz = hzccl_allreduce(SimCluster(4, network=fast_network), local, config)
        mpi = mpi_allreduce(SimCluster(4, network=fast_network), local)
        assert hz.bytes_on_wire < mpi.bytes_on_wire

    def test_multithread_mode(self, rng, fast_network, config):
        local = rank_data(rng, 4)
        st = hzccl_allreduce(SimCluster(4, network=fast_network), local, config)
        mt = hzccl_allreduce(
            SimCluster(4, network=fast_network, multithread=True), local, config
        )
        assert mt.breakdown.doc_time < st.breakdown.doc_time
        np.testing.assert_array_equal(mt.outputs[0], st.outputs[0])
