"""Tests for the fused batched rooted reduce collective."""

from __future__ import annotations

import numpy as np
import pytest

from repro.collectives import hzccl_batched_reduce, hzccl_reduce, mpi_reduce
from repro.core.config import CollectiveConfig
from repro.runtime import SimCluster
from repro.runtime.faults import FaultPlan


@pytest.fixture()
def config():
    return CollectiveConfig()


def _batch(k: int, n_ranks: int, elements: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    return [
        [
            np.cumsum(rng.normal(0, 0.05, elements)).astype(np.float32)
            for _ in range(n_ranks)
        ]
        for _ in range(k)
    ]


class TestBatchedReduce:
    def test_outputs_indexed_by_session_and_bit_identical(self, config):
        batch = _batch(3, 4, 517)
        result = hzccl_batched_reduce(SimCluster(n_ranks=4), batch, config)
        assert len(result.outputs) == 3
        for s, session in enumerate(batch):
            lone = hzccl_reduce(SimCluster(n_ranks=4), session, config)
            assert np.array_equal(result.outputs[s], lone.outputs[0])

    def test_nonzero_root_holds_the_fold(self, config):
        batch = _batch(2, 4, 300, seed=3)
        result = hzccl_batched_reduce(
            SimCluster(n_ranks=4), batch, config, root=2
        )
        lone = hzccl_reduce(SimCluster(n_ranks=4), batch[0], config, root=2)
        assert np.array_equal(result.outputs[0], lone.outputs[2])

    def test_batching_amortises_wire_bytes(self, config):
        k = 4
        batch = _batch(k, 4, 1024, seed=5)
        fused = hzccl_batched_reduce(SimCluster(n_ranks=4), batch, config)
        independent = sum(
            hzccl_reduce(SimCluster(n_ranks=4), s, config).bytes_on_wire
            for s in batch
        )
        assert fused.bytes_on_wire <= independent

    def test_root_out_of_range(self, config):
        with pytest.raises(IndexError, match="root 9 out of range"):
            hzccl_batched_reduce(
                SimCluster(n_ranks=4), _batch(1, 4, 64), config, root=9
            )

    def test_empty_batch_rejected(self, config):
        with pytest.raises(ValueError, match="empty batch"):
            hzccl_batched_reduce(SimCluster(n_ranks=4), [], config)

    def test_rank_count_mismatch_names_the_session(self, config):
        batch = _batch(2, 4, 64)
        batch[1] = batch[1][:3]
        with pytest.raises(ValueError, match="session 1: got 3 rank arrays"):
            hzccl_batched_reduce(SimCluster(n_ranks=4), batch, config)

    def test_shape_mismatch_names_the_session(self, config):
        batch = _batch(2, 4, 64)
        batch[1] = [np.zeros(65, dtype=np.float32) for _ in range(4)]
        with pytest.raises(ValueError, match="session 1: shape"):
            hzccl_batched_reduce(SimCluster(n_ranks=4), batch, config)


class TestBatchedDegrade:
    def test_degrade_reruns_every_session_plain(self, config):
        batch = _batch(2, 4, 300, seed=7)
        cluster = SimCluster(
            n_ranks=4, faults=FaultPlan(seed=1, corrupt_rate=0.9)
        )
        result = hzccl_batched_reduce(cluster, batch, config)
        assert result.degraded
        for s, session in enumerate(batch):
            exact = mpi_reduce(SimCluster(n_ranks=4), session).outputs[0]
            np.testing.assert_array_equal(result.outputs[s], exact)

    def test_degrade_bills_both_attempts(self, config):
        batch = _batch(2, 4, 300, seed=7)
        degraded = hzccl_batched_reduce(
            SimCluster(n_ranks=4, faults=FaultPlan(seed=1, corrupt_rate=0.9)),
            batch,
            config,
        )
        clean = hzccl_batched_reduce(SimCluster(n_ranks=4), batch, config)
        assert degraded.degraded and not clean.degraded
        assert degraded.bytes_on_wire > clean.bytes_on_wire
