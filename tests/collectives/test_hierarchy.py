"""Executed correctness of the two-level hierarchical allreduce.

The load-bearing property is *bit-identity*: because the homomorphic
path quantises each input exactly once and every fold — intra-node
binomial, inter-node ring or Rabenseifner — is an exact integer-domain
``reduce_fused``, the hierarchical result must equal the flat fused
reference (compress every rank's block, fold them all, decode) to the
last bit, for the same ``n_nodes`` block split.  Hierarchy changes the
schedule, never the answer.
"""

import numpy as np
import pytest

from repro.collectives import (
    hzccl_hierarchical_allreduce,
    mpi_hierarchical_allreduce,
)
from repro.collectives.base import split_blocks
from repro.compression.fzlight import FZLight
from repro.core import HZCCL
from repro.core.config import CollectiveConfig
from repro.homomorphic.hzdynamic import HZDynamic
from repro.runtime import (
    DragonflyNetwork,
    FaultPlan,
    NodeMap,
    SimCluster,
    TorusNetwork,
    TraceLog,
)

EB = 1e-3
CONFIG = CollectiveConfig(error_bound=EB)
SHAPES = [(8, 2), (8, 4), (16, 4), (6, 3), (4, 4), (5, 1)]


def _data(n: int, elements: int = 600, seed: int = 7) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    return [
        np.cumsum(rng.normal(0, 0.05, elements)).astype(np.float32)
        for _ in range(n)
    ]


def _flat_fused_reference(data, n_nodes: int) -> list[np.ndarray]:
    """Compress every rank's block once, fold them all, decode — the
    schedule-free answer the hierarchy must reproduce bit-for-bit."""
    comp = FZLight(
        block_size=CONFIG.block_size, n_threadblocks=CONFIG.n_threadblocks
    )
    engine = HZDynamic(collect_stats=False)
    out = []
    for b in range(n_nodes):
        fields = [
            comp.compress(split_blocks(a, n_nodes)[b], abs_eb=EB)
            for a in data
        ]
        out.append(comp.decompress(engine.reduce_fused(fields)))
    return out


class TestPlain:
    @pytest.mark.parametrize("n,rpn", SHAPES)
    @pytest.mark.parametrize("inter", ["ring"])
    def test_matches_exact_sum(self, n, rpn, inter):
        data = _data(n)
        exact = np.sum(np.stack(data), axis=0, dtype=np.float64)
        cluster = SimCluster(n)
        result = mpi_hierarchical_allreduce(
            cluster, data, NodeMap.regular(n, rpn), inter=inter
        )
        assert not result.degraded
        for out in result.outputs:
            np.testing.assert_allclose(out, exact, rtol=1e-4, atol=1e-5)

    def test_rabenseifner_inter(self):
        n, rpn = 16, 4
        data = _data(n)
        exact = np.sum(np.stack(data), axis=0, dtype=np.float64)
        result = mpi_hierarchical_allreduce(
            SimCluster(n), data, NodeMap.regular(n, rpn),
            inter="rabenseifner",
        )
        for out in result.outputs:
            np.testing.assert_allclose(out, exact, rtol=1e-4, atol=1e-5)

    def test_rank_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="NodeMap places"):
            mpi_hierarchical_allreduce(
                SimCluster(8), _data(8), NodeMap.regular(4, 2)
            )


class TestHomomorphic:
    @pytest.mark.parametrize("n,rpn", SHAPES)
    def test_bit_identical_to_flat_fused_reference(self, n, rpn):
        nodemap = NodeMap.regular(n, rpn)
        data = _data(n)
        reference = _flat_fused_reference(data, nodemap.n_nodes)
        result = hzccl_hierarchical_allreduce(
            SimCluster(n), data, CONFIG, nodemap, inter="ring"
        )
        assert not result.degraded
        for out in result.outputs:
            for b in range(nodemap.n_nodes):
                np.testing.assert_array_equal(
                    split_blocks(out, nodemap.n_nodes)[b], reference[b]
                )

    def test_rabenseifner_bit_identical_too(self):
        n, rpn = 16, 4
        nodemap = NodeMap.regular(n, rpn)
        data = _data(n)
        reference = np.concatenate(
            _flat_fused_reference(data, nodemap.n_nodes)
        )
        result = hzccl_hierarchical_allreduce(
            SimCluster(n), data, CONFIG, nodemap, inter="rabenseifner"
        )
        for out in result.outputs:
            np.testing.assert_array_equal(out, reference)

    @pytest.mark.parametrize("n,rpn", SHAPES)
    def test_within_error_bound(self, n, rpn):
        data = _data(n)
        exact = np.sum(np.stack(data), axis=0, dtype=np.float64)
        result = hzccl_hierarchical_allreduce(
            SimCluster(n), data, CONFIG, NodeMap.regular(n, rpn)
        )
        for out in result.outputs:
            assert np.max(np.abs(out - exact)) <= n * EB + 1e-12

    def test_sends_fewer_wire_bytes_than_plain(self):
        n, rpn = 16, 4
        data = _data(n, elements=4096)
        nodemap = NodeMap.regular(n, rpn)
        plain = mpi_hierarchical_allreduce(
            SimCluster(n), data, nodemap, inter="ring"
        )
        hz = hzccl_hierarchical_allreduce(
            SimCluster(n), data, CONFIG, nodemap, inter="ring"
        )
        assert hz.bytes_on_wire < plain.bytes_on_wire

    def test_fabric_aware_default_family(self):
        """``inter=None`` defers to the cluster's network model."""
        n, rpn = 16, 4  # 4 nodes: power of two → rabenseifner on dragonfly
        data = _data(n)
        nodemap = NodeMap.regular(n, rpn)
        for network in (DragonflyNetwork(), TorusNetwork()):
            cluster = SimCluster(n, network=network, trace=TraceLog())
            result = hzccl_hierarchical_allreduce(
                cluster, data, CONFIG, nodemap
            )
            assert not result.degraded
            reference = np.concatenate(
                _flat_fused_reference(data, nodemap.n_nodes)
            )
            np.testing.assert_array_equal(result.outputs[0], reference)


class TestDegrade:
    def test_high_corruption_degrades_to_plain(self):
        """Unrecoverable streams must fall back to the flat uncompressed
        ring — degraded, never silently wrong."""
        n = 8
        data = _data(n)
        exact = np.sum(np.stack(data), axis=0, dtype=np.float64)
        cluster = SimCluster(
            n, faults=FaultPlan(seed=3, corrupt_rate=0.9), trace=TraceLog()
        )
        result = hzccl_hierarchical_allreduce(
            cluster, data, CONFIG, NodeMap.regular(n, 2)
        )
        assert result.degraded
        for out in result.outputs:
            np.testing.assert_allclose(out, exact, rtol=1e-4, atol=1e-4)
        assert cluster.trace.fault_summary().get("DEGRADE", 0) >= 1


class TestFacade:
    def test_api_dispatches_on_nodemap(self):
        n = 8
        data = _data(n)
        api = HZCCL(config=CONFIG)
        nodemap = NodeMap.regular(n, 2)
        exact = np.sum(np.stack(data), axis=0, dtype=np.float64)
        for kernel in ("hzccl", "mpi"):
            result = api.allreduce(data, kernel=kernel, nodemap=nodemap)
            np.testing.assert_allclose(
                result.outputs[0], exact, atol=n * EB + 1e-4
            )

    def test_api_rejects_non_hierarchical_kernels_with_nodemap(self):
        api = HZCCL(config=CONFIG)
        with pytest.raises(ValueError):
            api.allreduce(
                _data(8), kernel="ccoll", nodemap=NodeMap.regular(8, 2)
            )
