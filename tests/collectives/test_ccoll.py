"""Tests for the C-Coll (DOC workflow) collectives."""

import numpy as np
import pytest

from repro.collectives import (
    ccoll_allgather,
    ccoll_allreduce,
    ccoll_reduce_scatter,
    mpi_reduce_scatter,
    split_blocks,
)
from repro.runtime.cluster import SimCluster
from repro.runtime.topology import Ring


def rank_data(rng, n_ranks, n=10_007):
    return [np.cumsum(rng.normal(0, 0.05, n)).astype(np.float32) for _ in range(n_ranks)]


def exact_total(local):
    return np.sum(np.stack(local).astype(np.float64), axis=0)


class TestReduceScatter:
    @pytest.mark.parametrize("n_ranks", [2, 4, 6])
    def test_error_bounded(self, rng, fast_network, config, n_ranks):
        """C-Coll requantises every round; error ≤ (2N−3)·eb."""
        local = rank_data(rng, n_ranks)
        cluster = SimCluster(n_ranks, network=fast_network)
        res = ccoll_reduce_scatter(cluster, local, config)
        exact = exact_total(local)
        ring = Ring(n_ranks)
        blocks = split_blocks(exact, n_ranks)
        bound = (2 * n_ranks) * config.error_bound
        for i in range(n_ranks):
            err = np.abs(
                res.outputs[i].astype(np.float64) - blocks[ring.owned_block(i)]
            ).max()
            assert err <= bound

    def test_all_doc_buckets_charged(self, rng, fast_network, config):
        cluster = SimCluster(4, network=fast_network)
        res = ccoll_reduce_scatter(cluster, rank_data(rng, 4), config)
        bd = res.breakdown
        assert bd.buckets["CPR"] > 0
        assert bd.buckets["DPR"] > 0
        assert bd.buckets["CPT"] > 0
        assert bd.buckets["HPR"] == 0  # no homomorphic ops in C-Coll

    def test_sends_fewer_bytes_than_mpi(self, rng, fast_network, config):
        local = rank_data(rng, 4)
        cc = ccoll_reduce_scatter(SimCluster(4, network=fast_network), local, config)
        mpi = mpi_reduce_scatter(SimCluster(4, network=fast_network), local)
        assert cc.bytes_on_wire < mpi.bytes_on_wire

    def test_wrong_rank_count(self, rng, fast_network, config):
        with pytest.raises(ValueError):
            ccoll_reduce_scatter(SimCluster(3, network=fast_network), rank_data(rng, 4), config)


class TestAllgather:
    def test_roundtrips_chunks_within_eb(self, rng, fast_network, config):
        n_ranks = 4
        chunks = [rng.normal(0, 1, 500).astype(np.float32) for _ in range(n_ranks)]
        cluster = SimCluster(n_ranks, network=fast_network)
        res = ccoll_allgather(cluster, chunks, config)
        ring = Ring(n_ranks)
        expected = np.concatenate(
            [chunks[[r for r in range(n_ranks) if ring.owned_block(r) == k][0]]
             for k in range(n_ranks)]
        )
        for out in res.outputs:
            assert np.abs(out - expected).max() <= config.error_bound * 1.01

    def test_own_chunk_kept_exact(self, rng, fast_network, config):
        n_ranks = 3
        chunks = [rng.normal(0, 1, 300).astype(np.float32) for _ in range(n_ranks)]
        res = ccoll_allgather(SimCluster(n_ranks, network=fast_network), chunks, config)
        ring = Ring(n_ranks)
        for i in range(n_ranks):
            k = ring.owned_block(i)
            own = res.outputs[i].reshape(n_ranks, 300)[k]
            np.testing.assert_array_equal(own, chunks[i])


class TestAllreduce:
    @pytest.mark.parametrize("n_ranks", [2, 4])
    def test_error_bounded(self, rng, fast_network, config, n_ranks):
        local = rank_data(rng, n_ranks)
        res = ccoll_allreduce(SimCluster(n_ranks, network=fast_network), local, config)
        exact = exact_total(local)
        bound = (2 * n_ranks + 1) * config.error_bound
        for out in res.outputs:
            assert np.abs(out.astype(np.float64) - exact).max() <= bound

    def test_rank_outputs_agree_within_eb(self, rng, fast_network, config):
        local = rank_data(rng, 4)
        res = ccoll_allreduce(SimCluster(4, network=fast_network), local, config)
        base = res.outputs[0].astype(np.float64)
        for out in res.outputs[1:]:
            assert np.abs(out.astype(np.float64) - base).max() <= 2 * config.error_bound

    def test_multithread_reduces_compute_share(self, rng, fast_network, config):
        local = rank_data(rng, 4)
        st = ccoll_allreduce(SimCluster(4, network=fast_network), local, config)
        mt = ccoll_allreduce(
            SimCluster(4, network=fast_network, multithread=True), local, config
        )
        assert mt.breakdown.doc_time < st.breakdown.doc_time
