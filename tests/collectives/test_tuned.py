"""Executed behaviour of the autotuned allreduce entry point.

Covers the lookup chain end-to-end (explicit table → config path → env
var → live enumeration), the no-placement demotion of hierarchical
picks, the obs counters, and the facade's ``allreduce(tune=True)``.
"""

import numpy as np
import pytest

from repro.collectives import mpi_allreduce, tuned_allreduce
from repro.core import HZCCL
from repro.core.config import CollectiveConfig
from repro.obs.metrics import metrics_enabled
from repro.runtime import NodeMap, SimCluster, TorusNetwork
from repro.schedule.tuner import (
    Candidate,
    TableEntry,
    TuningKey,
    TuningTable,
    classify_roughness,
    size_bucket,
)

EB = 1e-3
CONFIG = CollectiveConfig(error_bound=EB)
N = 4
N_ELEMENTS = 720


def _data(n: int = N) -> list[np.ndarray]:
    return [
        np.sin(np.linspace(0, 9, N_ELEMENTS) + r).astype(np.float32)
        for r in range(n)
    ]


def _exact(data) -> np.ndarray:
    return np.sum(np.stack(data), axis=0, dtype=np.float64).astype(np.float32)


def _key_for(data, network, n: int = N) -> TuningKey:
    return TuningKey(
        op="allreduce",
        dtype=str(data[0].dtype),
        bucket=size_bucket(int(data[0].nbytes)),
        n_ranks=n,
        fabric="torus" if isinstance(network, TorusNetwork) else "base",
        roughness=classify_roughness(data[0], EB),
    )


def _forced_table(key: TuningKey, slug: str, flat_slug: str | None = None) -> TuningTable:
    pick = Candidate.parse(slug)
    flat = Candidate.parse(flat_slug or slug)
    return TuningTable(
        {key: TableEntry(pick=pick, cost_s=1.0, flat_pick=flat, flat_cost_s=2.0)}
    )


def test_tuned_allreduce_is_correct_on_a_miss():
    """No table anywhere: live enumeration picks something that works."""
    data = _data()
    cluster = SimCluster(N, network=TorusNetwork())
    result = tuned_allreduce(cluster, data, CONFIG)
    assert not result.degraded
    bound = (2 * N + 1) * EB
    for out in result.outputs:
        np.testing.assert_allclose(out, _exact(data), atol=bound)


def test_forced_table_pick_is_honoured():
    data = _data()
    net = TorusNetwork()
    table = _forced_table(_key_for(data, net), "ring-plain")
    cluster = SimCluster(N, network=net)
    with metrics_enabled() as registry:
        result = tuned_allreduce(cluster, data, CONFIG, table=table)
    assert registry.counter("tuner.lookups") == 1
    assert registry.counter("tuner.source.table") == 1
    assert registry.counter("tuner.pick.ring-plain") == 1
    # ring-plain is exact up to float associativity — no quantisation
    reference = mpi_allreduce(SimCluster(N, network=net), data)
    for out, ref in zip(result.outputs, reference.outputs):
        np.testing.assert_array_equal(out, ref)


def test_hierarchical_pick_runs_with_nodemap():
    data = _data()
    net = TorusNetwork()
    table = _forced_table(
        _key_for(data, net), "hier-ring2-hz", flat_slug="ring-hz"
    )
    nodemap = NodeMap.regular(N, 2)
    with metrics_enabled() as registry:
        result = tuned_allreduce(
            SimCluster(N, network=net), data, CONFIG, nodemap=nodemap,
            table=table,
        )
    assert registry.counter("tuner.pick.hier-ring2-hz") == 1
    assert registry.counter("tuner.flat_fallback") == 0
    np.testing.assert_allclose(
        result.outputs[0], _exact(data), atol=(2 * N + 1) * EB
    )


def test_hierarchical_pick_demotes_to_flat_without_nodemap():
    data = _data()
    net = TorusNetwork()
    table = _forced_table(
        _key_for(data, net), "hier-ring2-hz", flat_slug="rabenseifner-hz"
    )
    with metrics_enabled() as registry:
        result = tuned_allreduce(
            SimCluster(N, network=net), data, CONFIG, table=table
        )
    assert registry.counter("tuner.flat_fallback") == 1
    assert registry.counter("tuner.pick.rabenseifner-hz") == 1
    assert registry.counter("tuner.pick.hier-ring2-hz") == 0
    assert not result.degraded


def test_table_resolution_config_and_env(tmp_path, monkeypatch):
    data = _data()
    net = TorusNetwork()
    table = _forced_table(_key_for(data, net), "ring-plain")

    config_path = tmp_path / "config_table.json"
    table.save(str(config_path))
    config = CollectiveConfig(
        error_bound=EB, tuning_table_path=str(config_path)
    )
    with metrics_enabled() as registry:
        tuned_allreduce(SimCluster(N, network=net), data, config)
    assert registry.counter("tuner.source.table") == 1

    env_path = tmp_path / "env_table.json"
    table.save(str(env_path))
    monkeypatch.setenv("REPRO_TUNING_TABLE", str(env_path))
    with metrics_enabled() as registry:
        tuned_allreduce(SimCluster(N, network=net), data, CONFIG)
    assert registry.counter("tuner.source.table") == 1

    # a configured-but-missing table degrades to a miss, not an error
    monkeypatch.setenv("REPRO_TUNING_TABLE", str(tmp_path / "absent.json"))
    with metrics_enabled() as registry:
        result = tuned_allreduce(SimCluster(N, network=net), data, CONFIG)
    assert registry.counter("tuner.source.table") == 0
    assert not result.degraded


def test_rank_count_mismatch_rejected():
    with pytest.raises(ValueError):
        tuned_allreduce(SimCluster(3), _data(4), CONFIG)


def test_facade_tune_flag():
    lib = HZCCL(CollectiveConfig(error_bound=EB))
    data = _data(8)
    result = lib.allreduce(data, tune=True)
    assert not result.degraded
    np.testing.assert_allclose(
        result.outputs[0], _exact(data), atol=(2 * 8 + 1) * EB
    )
    # tune composes with placement: hierarchical candidates are in play
    placed = lib.allreduce(data, tune=True, nodemap=NodeMap.regular(8, 4))
    np.testing.assert_allclose(
        placed.outputs[0], _exact(data), atol=(2 * 8 + 1) * EB
    )
