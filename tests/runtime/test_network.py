"""Unit tests for the α–β–congestion network model."""

import pytest

from repro.runtime.network import OMNIPATH_100G, NetworkModel


class TestTransferTime:
    def test_latency_floor(self):
        net = NetworkModel(latency_s=1e-5, bandwidth_Bps=1e9, min_message_bytes=1)
        assert net.transfer_time(0) >= 1e-5

    def test_linear_in_bytes(self):
        net = NetworkModel(latency_s=0.0001, bandwidth_Bps=1e9, congestion_per_log2=0)
        t1 = net.transfer_time(10**6)
        t2 = net.transfer_time(2 * 10**6)
        assert t2 - t1 == pytest.approx(10**6 / 1e9)

    def test_bandwidth_term(self):
        net = NetworkModel(latency_s=1e-9, bandwidth_Bps=2e9, congestion_per_log2=0)
        assert net.transfer_time(2 * 10**9) == pytest.approx(1.0, rel=1e-3)

    def test_min_message_floor(self):
        net = NetworkModel(min_message_bytes=4096)
        assert net.transfer_time(1) == net.transfer_time(4096)

    def test_rejects_negative_bytes(self):
        with pytest.raises(ValueError):
            NetworkModel().transfer_time(-1)


class TestCongestion:
    def test_no_congestion_at_two_nodes(self):
        assert NetworkModel().congestion_factor(2) == 1.0

    def test_grows_with_nodes(self):
        net = NetworkModel(congestion_per_log2=0.5)
        factors = [net.congestion_factor(n) for n in (2, 8, 64, 512)]
        assert factors == sorted(factors)
        assert factors[-1] > factors[0]

    def test_zero_coefficient_disables(self):
        net = NetworkModel(congestion_per_log2=0.0)
        assert net.congestion_factor(512) == 1.0

    def test_affects_transfer_time(self):
        net = NetworkModel(congestion_per_log2=0.5)
        assert net.transfer_time(10**7, 64) > net.transfer_time(10**7, 2)

    def test_omnipath_calibration(self):
        """Effective per-flow bandwidth at 512 ranks lands near 1.4 GB/s."""
        eff = OMNIPATH_100G.bandwidth_Bps / OMNIPATH_100G.congestion_factor(512)
        assert 1.0e9 < eff < 2.5e9

    def test_ring_round_equals_transfer(self):
        net = NetworkModel()
        assert net.ring_round_time(10**6, 8) == net.transfer_time(10**6, 8)


class TestValidation:
    def test_rejects_zero_bandwidth(self):
        with pytest.raises(ValueError):
            NetworkModel(bandwidth_Bps=0)

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            NetworkModel(latency_s=-1)

    def test_rejects_negative_congestion(self):
        with pytest.raises(ValueError):
            NetworkModel(congestion_per_log2=-0.1)
