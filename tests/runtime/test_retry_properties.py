"""Property-based contracts for RetryPolicy (hypothesis).

The multi-process data plane derives *real* wall-clock deadlines from
``max_transfer_wait_s``, so these bounds are load-bearing: a delay that
escaped ``max_delay_s`` or an unbounded total wait would turn a fault
storm into a hang instead of a clean timeout.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.faults import RetryPolicy

policies = st.builds(
    RetryPolicy,
    timeout_s=st.floats(0.0, 1.0, allow_nan=False),
    base_delay_s=st.floats(0.0, 0.1, allow_nan=False),
    backoff=st.floats(1.0, 8.0, allow_nan=False),
    max_delay_s=st.floats(0.1, 1.0, allow_nan=False),
    max_attempts=st.integers(1, 64),
)


@settings(max_examples=200)
@given(policy=policies, attempt=st.integers(0, 63))
def test_delay_is_monotone_in_attempt(policy, attempt):
    assert policy.delay(attempt + 1) >= policy.delay(attempt)


@settings(max_examples=200)
@given(policy=policies, attempt=st.integers(0, 1000))
def test_delay_is_bounded_and_nonnegative(policy, attempt):
    d = policy.delay(attempt)
    assert 0.0 <= d <= policy.max_delay_s


@settings(max_examples=200)
@given(policy=policies)
def test_total_retry_wait_is_finite_and_bounded(policy):
    # every attempt waits at most timeout_s for the loss verdict plus its
    # backoff delay; the sum over all attempts must stay under the bound
    # the MP data plane turns into a real receive deadline
    total = sum(
        policy.timeout_s + policy.delay(a) for a in range(policy.max_attempts)
    )
    bound = policy.max_transfer_wait_s()
    assert total <= bound + 1e-12
    assert bound < float("inf")


class TestValidation:
    """Regression: __post_init__ rejects nonsense instead of storing it."""

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError, match="delays must be >= 0"):
            RetryPolicy(timeout_s=-1e-6)

    def test_negative_max_delay_rejected(self):
        with pytest.raises(ValueError, match="max_delay_s"):
            RetryPolicy(max_delay_s=-1.0)

    def test_backoff_below_one_rejected(self):
        with pytest.raises(ValueError, match="backoff"):
            RetryPolicy(backoff=0.5)

    def test_zero_attempts_rejected(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)

    def test_swapped_delay_bounds_warn_but_clamp(self):
        with pytest.warns(UserWarning, match="max_delay_s"):
            policy = RetryPolicy(base_delay_s=1e-3, max_delay_s=1e-6)
        assert policy.delay(0) == policy.max_delay_s
        assert policy.delay(10) == policy.max_delay_s
