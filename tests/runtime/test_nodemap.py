"""Tests for the rank→node placement map."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.runtime import NodeMap


class TestConstruction:
    def test_regular(self):
        nm = NodeMap.regular(8, 2)
        assert nm.n_ranks == 8
        assert nm.n_nodes == 4
        assert nm.node_of_rank == (0, 0, 1, 1, 2, 2, 3, 3)

    def test_regular_rejects_non_divisible(self):
        with pytest.raises(ValueError):
            NodeMap.regular(10, 4)

    def test_regular_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            NodeMap.regular(0, 4)
        with pytest.raises(ValueError):
            NodeMap.regular(8, 0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            NodeMap(node_of_rank=())

    def test_rejects_non_contiguous_node_ids(self):
        with pytest.raises(ValueError):
            NodeMap(node_of_rank=(0, 0, 2, 2))

    def test_rejects_bad_intra_scale(self):
        with pytest.raises(ValueError):
            NodeMap(node_of_rank=(0, 1), intra_scale=0.0)

    def test_irregular_placement(self):
        nm = NodeMap(node_of_rank=(0, 1, 0, 1, 0))
        assert nm.n_nodes == 2
        assert nm.members(0) == (0, 2, 4)
        assert nm.members(1) == (1, 3)
        assert nm.max_node_size == 3


class TestAccessors:
    def test_leader_is_lowest_rank(self):
        nm = NodeMap(node_of_rank=(1, 0, 1, 0))
        assert nm.leader(0) == 1
        assert nm.leader(1) == 0
        assert nm.leaders() == (1, 0)

    def test_is_leader(self):
        nm = NodeMap.regular(8, 4)
        assert [nm.is_leader(r) for r in range(8)] == [
            True, False, False, False, True, False, False, False,
        ]

    def test_local_index(self):
        nm = NodeMap.regular(6, 3)
        assert [nm.local_index(r) for r in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_node_of(self):
        nm = NodeMap.regular(6, 3)
        assert [nm.node_of(r) for r in range(6)] == [0, 0, 0, 1, 1, 1]


class TestHashability:
    def test_usable_as_cache_key(self):
        """Schedules are memoised per NodeMap — the map must hash by value
        despite its derived membership table."""
        a = NodeMap.regular(8, 2)
        b = NodeMap.regular(8, 2)
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_intra_scale_distinguishes(self):
        assert NodeMap.regular(8, 2) != NodeMap.regular(8, 2, intra_scale=2.0)


@given(
    ranks_per_node=st.integers(1, 8),
    n_nodes=st.integers(1, 8),
    intra_scale=st.floats(0.5, 16.0),
)
def test_regular_partitions_all_ranks(ranks_per_node, n_nodes, intra_scale):
    n = ranks_per_node * n_nodes
    nm = NodeMap.regular(n, ranks_per_node, intra_scale=intra_scale)
    seen = [r for node in range(nm.n_nodes) for r in nm.members(node)]
    assert sorted(seen) == list(range(n))
    for node in range(nm.n_nodes):
        members = nm.members(node)
        assert members[0] == nm.leader(node) == min(members)
        assert list(members) == sorted(members)
