"""Tests for the topology-variant network models."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.runtime.fabrics import DragonflyNetwork, FatTreeNetwork, TorusNetwork
from repro.runtime.network import NetworkModel

ALL_FABRICS = [
    NetworkModel(),
    FatTreeNetwork(),
    TorusNetwork(),
    DragonflyNetwork(),
]
FABRIC_IDS = ["base", "fattree", "torus", "dragonfly"]


class TestFatTree:
    def test_is_base_law(self):
        from repro.runtime.network import NetworkModel

        fat = FatTreeNetwork(congestion_per_log2=0.5)
        base = NetworkModel(congestion_per_log2=0.5)
        for n in (2, 16, 512):
            assert fat.congestion_factor(n) == base.congestion_factor(n)


class TestTorus:
    def test_no_congestion_at_two(self):
        assert TorusNetwork().congestion_factor(2) == 1.0

    def test_monotone(self):
        torus = TorusNetwork()
        factors = [torus.congestion_factor(n) for n in (2, 8, 64, 512, 4096)]
        assert factors == sorted(factors)

    def test_dimension_effect(self):
        """Lower-dimensional tori congest faster (less bisection)."""
        t1 = TorusNetwork(dimensions=1)
        t3 = TorusNetwork(dimensions=3)
        assert t1.congestion_factor(512) > t3.congestion_factor(512)

    def test_polynomial_growth(self):
        torus = TorusNetwork(dimensions=3)
        # N^(1/3): factor increments grow with N, unlike a log law
        inc_small = torus.congestion_factor(16) - torus.congestion_factor(8)
        inc_large = torus.congestion_factor(1024) - torus.congestion_factor(512)
        assert inc_large > inc_small

    def test_validation(self):
        with pytest.raises(ValueError):
            TorusNetwork(dimensions=0)
        with pytest.raises(ValueError):
            TorusNetwork(torus_coefficient=-1)

    def test_transfer_time_uses_topology(self):
        torus = TorusNetwork()
        assert torus.transfer_time(10**7, 512) > torus.transfer_time(10**7, 2)


class TestDragonfly:
    def test_flat_below_saturation(self):
        fly = DragonflyNetwork(saturation_nodes=128)
        assert fly.congestion_factor(64) < 1.5

    def test_cliff_at_saturation(self):
        fly = DragonflyNetwork(saturation_nodes=128, cliff_factor=2.5)
        below = fly.congestion_factor(128)
        above = fly.congestion_factor(129)
        assert above > below * 1.5

    def test_gentle_slope_past_cliff(self):
        fly = DragonflyNetwork(saturation_nodes=128)
        assert fly.congestion_factor(512) > fly.congestion_factor(256)
        # but far less than another cliff
        assert fly.congestion_factor(512) < fly.congestion_factor(256) * 1.5

    def test_validation(self):
        with pytest.raises(ValueError):
            DragonflyNetwork(saturation_nodes=1)
        with pytest.raises(ValueError):
            DragonflyNetwork(cliff_factor=0.5)

    def test_two_nodes_pay_no_congestion(self):
        """Regression: the per-group term used to leak a 1.05 factor into
        a two-endpoint transfer — a point-to-point link has no sharing."""
        assert DragonflyNetwork().congestion_factor(2) == 1.0
        assert DragonflyNetwork().congestion_factor(1) == 1.0


class TestCongestionLawContract:
    """Properties every fabric law must satisfy (the schedule cost model
    leans on both: flows come from Round concurrency, and a two-endpoint
    round must price like a bare link on any fabric)."""

    @pytest.mark.parametrize("network", ALL_FABRICS, ids=FABRIC_IDS)
    @given(n=st.integers(1, 2))
    def test_factor_is_exactly_one_up_to_two_nodes(self, network, n):
        assert network.congestion_factor(n) == 1.0

    @pytest.mark.parametrize("network", ALL_FABRICS, ids=FABRIC_IDS)
    @given(n=st.integers(1, 4096))
    def test_factor_never_below_one(self, network, n):
        assert network.congestion_factor(n) >= 1.0

    @pytest.mark.parametrize("network", ALL_FABRICS, ids=FABRIC_IDS)
    @given(n=st.integers(1, 4095))
    def test_monotone_non_decreasing_in_flows(self, network, n):
        assert (
            network.congestion_factor(n + 1) >= network.congestion_factor(n)
        )
