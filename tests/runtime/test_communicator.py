"""Unit tests for the point-to-point communicator."""

import pytest

from repro.runtime.communicator import CommTimeoutError, Communicator
from repro.runtime.faults import FaultPlan, RetryPolicy
from repro.runtime.network import NetworkModel

NET = NetworkModel(latency_s=1e-6, bandwidth_Bps=1e9, congestion_per_log2=0)


@pytest.fixture()
def comm():
    return Communicator(4, network=NET)


class TestSendRecv:
    def test_payload_roundtrip(self, comm):
        comm.send(0, 1, {"x": 3}, nbytes=100)
        assert comm.recv(1, 0) == {"x": 3}

    def test_fifo_per_channel(self, comm):
        comm.send(0, 1, "first", nbytes=10)
        comm.send(0, 1, "second", nbytes=10)
        assert comm.recv(1, 0) == "first"
        assert comm.recv(1, 0) == "second"

    def test_tags_separate_channels(self, comm):
        comm.send(0, 1, "a", nbytes=10, tag=1)
        comm.send(0, 1, "b", nbytes=10, tag=2)
        assert comm.recv(1, 0, tag=2) == "b"
        assert comm.recv(1, 0, tag=1) == "a"

    def test_missing_message_is_deadlock(self, comm):
        with pytest.raises(LookupError, match="deadlock"):
            comm.recv(2, 3)

    def test_self_send_rejected(self, comm):
        with pytest.raises(ValueError, match="self-send"):
            comm.send(1, 1, "x", nbytes=1)

    def test_rank_bounds(self, comm):
        with pytest.raises(IndexError):
            comm.send(0, 4, "x", nbytes=1)
        with pytest.raises(IndexError):
            comm.recv(4, 0)

    def test_sendrecv_exchange(self, comm):
        comm.send(1, 0, "from-1", nbytes=8)
        got = comm.sendrecv(0, dest=1, payload="from-0", nbytes=8, source=1)
        assert got == "from-1"
        assert comm.recv(1, 0) == "from-0"

    def test_pending_counts(self, comm):
        comm.send(0, 2, "x", nbytes=1)
        comm.send(1, 2, "y", nbytes=1)
        assert comm.pending(2) == 2
        comm.recv(2, 0)
        assert comm.pending(2) == 1


class TestVirtualTime:
    def test_recv_waits_for_arrival(self, comm):
        comm.advance(0, 1.0)  # sender is ahead
        comm.send(0, 1, "x", nbytes=10**6)
        comm.recv(1, 0)
        assert comm.clocks[1] >= 1.0 + 10**6 / 1e9

    def test_receiver_ahead_keeps_own_clock(self, comm):
        comm.send(0, 1, "x", nbytes=10)
        comm.advance(1, 5.0)
        comm.recv(1, 0)
        assert comm.clocks[1] == 5.0

    def test_advance_rejects_negative(self, comm):
        with pytest.raises(ValueError):
            comm.advance(0, -1.0)

    def test_makespan(self, comm):
        comm.advance(3, 2.5)
        assert comm.makespan == 2.5

    def test_bytes_accounting(self, comm):
        comm.send(0, 1, "x", nbytes=128)
        comm.send(0, 2, "y", nbytes=64)
        assert comm.bytes_sent[0] == 192

    def test_causality_chain(self, comm):
        """0 → 1 → 2: rank 2's clock includes both hops."""
        comm.send(0, 1, "x", nbytes=10**6)
        payload = comm.recv(1, 0)
        comm.send(1, 2, payload, nbytes=10**6)
        comm.recv(2, 1)
        assert comm.clocks[2] >= 2 * (10**6 / 1e9)


class TestRecvTimeout:
    """Regression: a recv with no matching send used to be distinguishable
    only as a "deadlock" LookupError; with ``timeout_s`` it is an explicit
    timeout whose wait is charged to the receiver's virtual clock."""

    def test_timeout_raises_commtimeouterror(self, comm):
        with pytest.raises(CommTimeoutError, match="timeout"):
            comm.recv(2, 3, timeout_s=5e-4)

    def test_timeout_is_a_lookuperror(self, comm):
        # existing deadlock handling must still catch the timeout
        with pytest.raises(LookupError):
            comm.recv(2, 3, timeout_s=5e-4)

    def test_timeout_charges_receiver_clock(self, comm):
        with pytest.raises(CommTimeoutError):
            comm.recv(1, 0, timeout_s=2e-3)
        assert comm.clocks[1] == pytest.approx(2e-3)
        assert comm.fault_stats.timeouts == 1

    def test_timeout_error_carries_context(self, comm):
        with pytest.raises(CommTimeoutError) as err:
            comm.recv(3, 1, tag=7, timeout_s=1e-3)
        assert (err.value.dest, err.value.source, err.value.tag) == (3, 1, 7)

    def test_no_timeout_still_reports_deadlock(self, comm):
        with pytest.raises(LookupError, match="deadlock"):
            comm.recv(2, 3)

    def test_message_present_ignores_timeout(self, comm):
        comm.send(0, 1, "x", nbytes=10)
        assert comm.recv(1, 0, timeout_s=1e-6) == "x"


class TestFaultyTransport:
    def test_dropped_message_retransmits_and_delivers(self):
        comm = Communicator(2, network=NET, faults=FaultPlan(seed=1, drop_rate=1.0))
        comm.send(0, 1, "precious", nbytes=100)
        healthy = Communicator(2, network=NET)
        healthy.send(0, 1, "precious", nbytes=100)
        healthy.recv(1, 0)
        assert comm.recv(1, 0) == "precious"  # reliable despite drops
        assert comm.fault_stats.drops > 0
        assert comm.fault_stats.retransmissions > 0
        # every retransmission round-trip cost the receiver virtual time
        assert comm.clocks[1] > healthy.clocks[1]

    def test_retransmission_count_is_bounded(self):
        retry = RetryPolicy(max_attempts=3)
        comm = Communicator(
            2, network=NET, faults=FaultPlan(seed=2, drop_rate=1.0), retry=retry
        )
        comm.send(0, 1, "x", nbytes=10)
        comm.recv(1, 0)
        # initial send + at most (max_attempts - 1) retransmissions
        assert comm.fault_stats.retransmissions <= retry.max_attempts - 1

    def test_duplicates_are_discarded(self):
        comm = Communicator(
            2, network=NET, faults=FaultPlan(seed=3, duplicate_rate=1.0)
        )
        comm.send(0, 1, "a", nbytes=10)
        comm.send(0, 1, "b", nbytes=10)
        assert comm.recv(1, 0) == "a"
        assert comm.recv(1, 0) == "b"  # duplicate of "a" must not surface
        assert comm.fault_stats.duplicates == 2
        assert comm.pending(1) == 0

    def test_faulty_transport_is_deterministic(self):
        def run():
            comm = Communicator(
                2, network=NET, faults=FaultPlan(seed=4, drop_rate=0.4)
            )
            for k in range(10):
                comm.send(0, 1, k, nbytes=50)
            got = [comm.recv(1, 0) for _ in range(10)]
            return got, comm.clocks[1], comm.fault_stats.as_dict()

        assert run() == run()

    def test_degraded_link_slows_arrival(self):
        plan = FaultPlan(seed=5, degraded_links=((0, 1, 0.25),))
        slow = Communicator(2, network=NET, faults=plan)
        fast = Communicator(2, network=NET)
        for c in (slow, fast):
            c.send(0, 1, "x", nbytes=10**6)
            c.recv(1, 0)
        assert slow.clocks[1] > fast.clocks[1]


class TestEndpoint:
    def test_endpoint_view(self, comm):
        ep0, ep1 = comm.endpoint(0), comm.endpoint(1)
        assert ep0.size == 4
        ep0.send(1, "hello", nbytes=5)
        assert ep1.recv(0) == "hello"

    def test_endpoint_advance(self, comm):
        comm.endpoint(2).advance(0.25)
        assert comm.clocks[2] == 0.25

    def test_endpoint_bounds(self, comm):
        with pytest.raises(IndexError):
            comm.endpoint(9)
