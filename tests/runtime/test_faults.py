"""Resilient-channel behaviour on a simulated cluster.

Covers the delivery state machine: fault-free fast path, retransmission
charging, corruption detection via the wire checksum, the unrecoverable
escalation on the compressed path, and the reliable floor on the plain
path.
"""

import contextlib

import numpy as np
import pytest

from repro.runtime import (
    FaultPlan,
    RetryPolicy,
    SimCluster,
    TraceLog,
    UnrecoverableStreamError,
)


@pytest.fixture()
def field(small_compressor, rng):
    data = np.cumsum(rng.normal(0, 0.1, 640)).astype(np.float32)
    return small_compressor.compress(data, abs_eb=1e-3)


def _cluster(fast_network, plan=None, retry=None):
    kwargs = {"trace": TraceLog()}
    if retry is not None:
        kwargs["retry"] = retry
    return SimCluster(4, network=fast_network, faults=plan, **kwargs)


class TestHealthyPath:
    def test_plain_delivery_charges_like_charge_comm(self, fast_network):
        faulty = _cluster(fast_network)
        reference = _cluster(fast_network)
        d = faulty.channel.deliver_plain(0, 1, "x", 1000)
        reference.charge_comm(1, 1000)
        assert d.payload == "x" and d.nbytes == 1000 and d.attempts == 1
        assert faulty.clocks[1].buckets == reference.clocks[1].buckets

    def test_compressed_delivery_fast_path(self, fast_network, field):
        cluster = _cluster(fast_network)
        d = cluster.channel.deliver_compressed(0, 1, field)
        assert d.payload is field
        assert d.nbytes == field.nbytes
        assert cluster.channel.stats.total_faults == 0

    def test_charge_base_false_is_free_when_healthy(self, fast_network, field):
        cluster = _cluster(fast_network)
        d = cluster.channel.deliver_compressed(0, 1, field, charge_base=False)
        assert d.nbytes == 0
        assert cluster.clocks[1].total == 0.0


class TestDrops:
    def test_drop_charges_timeout_and_retries(self, fast_network, field):
        plan = FaultPlan(seed=1, drop_rate=0.5)
        cluster = _cluster(fast_network, plan)
        for _ in range(20):
            with contextlib.suppress(UnrecoverableStreamError):
                cluster.channel.deliver_compressed(0, 1, field)
        stats = cluster.channel.stats
        assert stats.drops > 0
        assert stats.timeouts == stats.drops
        assert stats.retry_seconds > 0
        assert cluster.clocks[1].buckets["OTHER"] > 0  # waits hit the clock
        labels = cluster.trace.fault_summary()
        assert labels["DROP"] == stats.drops
        assert labels["TIMEOUT"] == stats.drops

    def test_retry_wait_grows_with_backoff(self, fast_network, field):
        retry = RetryPolicy(
            timeout_s=100e-6, base_delay_s=50e-6, backoff=2.0, max_attempts=4
        )
        plan = FaultPlan(seed=1, drop_rate=1.0)
        cluster = _cluster(fast_network, plan, retry)
        with pytest.raises(UnrecoverableStreamError):
            cluster.channel.deliver_compressed(0, 1, field)
        # attempts 0..3 all dropped: waits are timeout + 50, 100, 200, 400 µs
        expected = 4 * retry.timeout_s + (50 + 100 + 200 + 400) * 1e-6
        assert cluster.clocks[1].buckets["OTHER"] == pytest.approx(expected)


class TestCorruption:
    def test_corrupt_stream_detected_and_retransmitted(self, fast_network, field):
        plan = FaultPlan(seed=2, corrupt_rate=0.5)
        cluster = _cluster(fast_network, plan)
        deliveries = [
            cluster.channel.deliver_compressed(0, 1, field) for _ in range(20)
        ]
        stats = cluster.channel.stats
        assert stats.corruptions > 0
        # every delivery still handed back the intact stream object
        assert all(d.payload is field for d in deliveries)
        # retransmissions paid extra wire bytes
        assert sum(d.nbytes for d in deliveries) > 20 * field.nbytes

    def test_all_attempts_corrupt_raises_unrecoverable(self, fast_network, field):
        plan = FaultPlan(seed=3, corrupt_rate=1.0)
        cluster = _cluster(fast_network, plan)
        with pytest.raises(UnrecoverableStreamError) as err:
            cluster.channel.deliver_compressed(0, 1, field)
        assert err.value.attempts == cluster.retry.max_attempts
        assert cluster.trace.fault_summary()["CORRUPT"] == 4

    def test_plain_path_never_raises(self, fast_network):
        plan = FaultPlan(seed=3, corrupt_rate=1.0)
        cluster = _cluster(fast_network, plan)
        d = cluster.channel.deliver_plain(0, 1, "payload", 512)
        assert d.payload == "payload"
        assert cluster.channel.stats.forced_deliveries == 1

    def test_plain_drop_storm_terminates(self, fast_network):
        plan = FaultPlan(seed=4, drop_rate=1.0)
        cluster = _cluster(fast_network, plan)
        d = cluster.channel.deliver_plain(0, 1, b"x", 64)
        assert d.payload == b"x"
        assert d.attempts == cluster.retry.max_attempts + 1


class TestDuplicates:
    def test_duplicate_charges_twice(self, fast_network, field):
        plan = FaultPlan(seed=5, duplicate_rate=1.0)
        cluster = _cluster(fast_network, plan)
        d = cluster.channel.deliver_compressed(0, 1, field)
        assert d.nbytes == 2 * field.nbytes
        assert cluster.channel.stats.duplicates == 1


class TestDegradedLinks:
    def test_degraded_link_stretches_transfer(self, fast_network, field):
        plan = FaultPlan(seed=6, degraded_links=((0, 1, 0.5),))
        slow = _cluster(fast_network, plan)
        fast = _cluster(fast_network, FaultPlan(seed=6))
        slow.channel.deliver_compressed(0, 1, field)
        fast.channel.deliver_compressed(0, 1, field)
        assert slow.clocks[1].buckets["MPI"] == pytest.approx(
            2 * fast.clocks[1].buckets["MPI"]
        )

    def test_straggler_scales_compute_charges(self, fast_network):
        plan = FaultPlan(seed=7, stragglers=(2,), straggler_factor=10.0)
        cluster = _cluster(fast_network, plan)
        cluster.charge_compute(2, "CPT", 1e-3)
        cluster.charge_compute(0, "CPT", 1e-3)
        assert cluster.clocks[2].buckets["CPT"] == pytest.approx(
            10 * cluster.clocks[0].buckets["CPT"]
        )


class TestChannelLifecycle:
    def test_channel_survives_multiple_stages(self, fast_network, field):
        plan = FaultPlan(seed=8, drop_rate=0.3)
        cluster = _cluster(fast_network, plan)
        ch1 = cluster.channel
        for _ in range(10):
            with contextlib.suppress(UnrecoverableStreamError):
                ch1.deliver_compressed(0, 1, field)
        seen = ch1.stats.messages
        assert cluster.channel is ch1  # same stage-spanning channel
        assert cluster.channel.stats.messages == seen

    def test_reset_clears_channel(self, fast_network, field):
        plan = FaultPlan(seed=8, drop_rate=0.3)
        cluster = _cluster(fast_network, plan)
        with contextlib.suppress(UnrecoverableStreamError):
            cluster.channel.deliver_compressed(0, 1, field)
        cluster.reset()
        assert cluster.channel.stats.messages == 0

    def test_degrade_records_trace_event(self, fast_network):
        cluster = _cluster(fast_network, FaultPlan(seed=9))
        cluster.channel.degrade()
        assert cluster.channel.stats.degraded_ops == 1
        assert cluster.trace.fault_summary() == {"DEGRADE": 1}
