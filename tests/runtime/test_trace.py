"""Tests for the execution-trace subsystem."""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives import hzccl_allreduce, mpi_allreduce, mpi_reduce_scatter
from repro.core.config import CollectiveConfig
from repro.runtime.cluster import SimCluster
from repro.runtime.faults import FaultPlan, RetryPolicy
from repro.runtime.network import NetworkModel
from repro.runtime.trace import TraceEvent, TraceLog

NET = NetworkModel(latency_s=1e-6, bandwidth_Bps=1e9, congestion_per_log2=0.1)


def _assert_invariant(log, tol=1e-9):
    """Every closed round satisfies duration == max_compute + comm + wait."""
    summaries = log.round_summaries()
    assert summaries, "expected at least one closed round"
    for s in summaries:
        assert s.duration == pytest.approx(
            s.max_compute + s.comm_time + s.wait_time, abs=tol
        ), f"round {s.round_index} breaks the accounting invariant"
    return summaries


class TestTraceLog:
    def test_round_counter(self):
        log = TraceLog()
        log.record_compute(0, "CPR", 0.1)
        log.record_round(0.2)
        log.record_comm(1, 0.05, 1000)
        log.record_round(0.1)
        assert log.n_rounds == 2

    def test_round_summaries(self):
        log = TraceLog()
        log.record_compute(0, "CPR", 0.10)
        log.record_compute(1, "CPR", 0.30)
        log.record_comm(0, 0.05, 4096)
        log.record_round(0.35)
        (summary,) = log.round_summaries()
        assert summary.max_compute == pytest.approx(0.30)
        assert summary.comm_time == pytest.approx(0.05)
        assert summary.bytes_moved == 4096
        assert summary.compute_bound

    def test_comm_bound_round(self):
        log = TraceLog()
        log.record_compute(0, "HPR", 0.01)
        log.record_comm(0, 0.5, 10**6)
        log.record_round(0.51)
        assert not log.round_summaries()[0].compute_bound

    def test_json_roundtrip(self, tmp_path):
        log = TraceLog()
        log.record_compute(2, "DPR", 0.25)
        log.record_comm(2, 0.1, 512)
        log.record_round(0.35)
        path = tmp_path / "trace.json"
        log.to_json(path)
        again = TraceLog.from_json(path.read_text())
        assert again.n_rounds == 1
        assert again.events == log.events

    def test_from_json_rejects_bad_schema(self):
        with pytest.raises(ValueError, match="schema"):
            TraceLog.from_json('{"schema": 9, "events": []}')

    def test_summaries_consume_events_once(self):
        """Regression: ``round_summaries`` must be one sweep over the event
        list, not a rescan per round (O(rounds × events) made long traces
        quadratic to post-process)."""

        class CountingList(list):
            iterations = 0

            def __iter__(self):
                CountingList.iterations += 1
                return super().__iter__()

        log = TraceLog()
        log.events = CountingList()
        for r in range(1000):
            log.record_compute(0, "CPR", 0.01)
            log.record_comm(0, 0.02, 64)
            log.record_round(0.03)
        CountingList.iterations = 0
        summaries = log.round_summaries()
        assert CountingList.iterations == 1
        assert len(summaries) == 1000
        assert all(s.bytes_moved == 64 for s in summaries)

    def test_summaries_match_naive_rescan(self):
        """The grouped sweep must agree with a per-round rescan oracle."""
        log = TraceLog()
        log.record_compute(0, "CPR", 0.10)
        log.record_compute(0, "CPR", 0.05)  # same rank accumulates
        log.record_compute(1, "HPR", 0.12)
        log.record_comm(0, 0.02, 128)
        log.record_comm(1, 0.07, 256)
        log.record_round(0.19)
        log.record_round(0.01)  # empty round: no compute, no comm
        log.record_comm(2, 0.30, 512)
        log.record_round(0.30)
        s = log.round_summaries()
        assert [x.round_index for x in s] == [0, 1, 2]
        assert s[0].max_compute == pytest.approx(0.15)
        assert s[0].comm_time == pytest.approx(0.07)
        assert s[0].bytes_moved == 384
        assert s[1].max_compute == 0.0 and s[1].bytes_moved == 0
        assert s[2].comm_time == pytest.approx(0.30)


class TestClusterIntegration:
    def test_collective_produces_trace(self, rng):
        local = [rng.normal(0, 1, 4003).astype(np.float32) for _ in range(4)]
        cluster = SimCluster(4, network=NET, trace=TraceLog())
        mpi_reduce_scatter(cluster, local)
        assert cluster.trace.n_rounds == 3  # N − 1 ring rounds
        summaries = cluster.trace.round_summaries()
        assert all(s.bytes_moved > 0 for s in summaries)

    def test_round_durations_sum_to_total(self, rng):
        local = [rng.normal(0, 1, 4003).astype(np.float32) for _ in range(4)]
        cluster = SimCluster(4, network=NET, trace=TraceLog())
        res = mpi_reduce_scatter(cluster, local)
        total = sum(s.duration for s in cluster.trace.round_summaries())
        assert total == pytest.approx(res.total_time)

    def test_hzccl_trace_shows_compression_phases(self, rng):
        local = [
            np.cumsum(rng.normal(0, 0.05, 8003)).astype(np.float32) for _ in range(4)
        ]
        config = CollectiveConfig(error_bound=1e-4, network=NET)
        cluster = SimCluster(4, network=NET, trace=TraceLog())
        hzccl_allreduce(cluster, local, config)
        buckets = {e.bucket for e in cluster.trace.events if e.kind == "compute"}
        assert {"CPR", "HPR", "DPR"} <= buckets

    def test_bytes_per_round_available(self, rng):
        local = [rng.normal(0, 1, 4003).astype(np.float32) for _ in range(3)]
        cluster = SimCluster(3, network=NET, trace=TraceLog())
        mpi_reduce_scatter(cluster, local)
        per_round = cluster.trace.bytes_per_round()
        assert len(per_round) == 2

    def test_no_trace_by_default(self, rng):
        cluster = SimCluster(3, network=NET)
        assert cluster.trace is None
        res = mpi_reduce_scatter(
            cluster, [rng.normal(0, 1, 99).astype(np.float32)] * 3
        )
        assert res.trace is None

    def test_result_carries_scoped_trace(self, rng):
        local = [rng.normal(0, 1, 4003).astype(np.float32) for _ in range(4)]
        cluster = SimCluster(4, network=NET, trace=TraceLog())
        res = mpi_reduce_scatter(cluster, local)
        assert res.trace is not None
        assert res.trace is not cluster.trace
        assert res.trace.n_rounds == cluster.trace.n_rounds == 3


class TestWaitAccounting:
    """Satellite: fault waits must be visible in round summaries.

    ``charge_wait`` stretches the round duration via ``_round_compute``,
    but summaries used to ignore ``kind="fault"`` events — so
    ``max_compute + comm_time`` fell short of ``duration`` and
    ``compute_bound`` misclassified rounds under retry storms.
    """

    def test_wait_time_is_critical_path_stretch(self):
        log = TraceLog()
        log.record_compute(0, "CPR", 0.10)
        log.record_compute(1, "CPR", 0.08)
        log.record_fault(1, "TIMEOUT", seconds=0.05)
        # makespan charges rank 1 its compute + wait = 0.13 > rank 0's 0.10
        log.record_round(0.13 + 0.02, comm=0.02)
        (s,) = log.round_summaries()
        assert s.max_compute == pytest.approx(0.10)
        assert s.wait_time == pytest.approx(0.03)
        assert s.duration == pytest.approx(
            s.max_compute + s.comm_time + s.wait_time
        )

    def test_wait_on_fast_rank_off_critical_path(self):
        log = TraceLog()
        log.record_compute(0, "CPR", 0.10)
        log.record_compute(1, "CPR", 0.02)
        log.record_fault(1, "TIMEOUT", seconds=0.03)  # 0.05 total < 0.10
        log.record_round(0.10, comm=0.0)
        (s,) = log.round_summaries()
        assert s.wait_time == 0.0

    def test_zero_second_faults_do_not_count_as_waits(self):
        log = TraceLog()
        log.record_compute(0, "CPR", 0.10)
        log.record_fault(0, "DROP", nbytes=512)  # marker, no wait
        log.record_fault(-1, "DEGRADE")  # cluster-scope marker
        log.record_round(0.10, comm=0.0)
        (s,) = log.round_summaries()
        assert s.wait_time == 0.0

    def test_invariant_under_injected_timeouts(self, rng):
        """Acceptance criterion: seeded FaultPlan with timeouts, every
        RoundSummary satisfies the invariant within 1e-9."""
        plan = FaultPlan(seed=1234, drop_rate=0.15, corrupt_rate=0.05)
        cluster = SimCluster(
            8,
            network=NET,
            trace=TraceLog(),
            faults=plan,
            retry=RetryPolicy(timeout_s=100e-6),
        )
        local = [
            np.cumsum(rng.normal(0, 0.05, 4096)).astype(np.float32)
            for _ in range(8)
        ]
        res = hzccl_allreduce(
            cluster, local, CollectiveConfig(error_bound=1e-4, network=NET)
        )
        summaries = _assert_invariant(res.trace)
        assert any(s.wait_time > 0 for s in summaries), (
            "fault plan injected no waits — raise drop_rate or reseed"
        )
        assert res.trace.fault_summary().get("TIMEOUT", 0) > 0

    def test_invariant_on_plain_path_under_drops(self, rng):
        plan = FaultPlan(seed=7, drop_rate=0.2)
        cluster = SimCluster(4, network=NET, trace=TraceLog(), faults=plan)
        local = [rng.normal(0, 1, 2048).astype(np.float32) for _ in range(4)]
        res = mpi_allreduce(cluster, local)
        summaries = _assert_invariant(res.trace)
        assert any(s.wait_time > 0 for s in summaries)

    def test_bucket_totals_include_waits(self):
        log = TraceLog()
        log.record_compute(0, "CPR", 0.1)
        log.record_comm(0, 0.2, 64)
        log.record_fault(0, "TIMEOUT", seconds=0.3)
        totals = log.bucket_totals()
        assert totals == pytest.approx(
            {"CPR": 0.1, "MPI": 0.2, "WAIT": 0.3}
        )


class TestResetRotation:
    """Satellite: ``SimCluster.reset()`` must not leak stale rounds."""

    def test_reset_rotates_trace(self):
        cluster = SimCluster(2, network=NET, trace=TraceLog())
        cluster.charge_compute(0, "CPR", 0.1)
        cluster.end_compute_phase()
        old = cluster.trace
        cluster.reset()
        assert cluster.trace is not old
        assert cluster.trace.n_rounds == 0
        assert cluster.trace.events == []
        # the rotated-out log is left intact for existing references
        assert old.n_rounds == 1

    def test_back_to_back_collectives_on_one_cluster(self, rng):
        local = [rng.normal(0, 1, 4003).astype(np.float32) for _ in range(4)]
        cluster = SimCluster(4, network=NET, trace=TraceLog())
        first = mpi_reduce_scatter(cluster, local)
        cluster.reset()
        second = mpi_reduce_scatter(cluster, local)
        # without rotation the second summaries would contain 6 rounds
        assert cluster.trace.n_rounds == 3
        assert second.trace.n_rounds == 3
        assert len(cluster.trace.bytes_per_round()) == 3
        assert first.trace.n_rounds == 3  # first result's slice unharmed
        assert sum(s.bytes_moved for s in second.trace.round_summaries()) == (
            second.bytes_on_wire
        )

    def test_reset_without_trace_stays_none(self):
        cluster = SimCluster(2, network=NET)
        cluster.reset()
        assert cluster.trace is None


_EVENT_STRATEGY = st.builds(
    TraceEvent,
    kind=st.sampled_from(["compute", "comm", "round", "fault", "begin", "end"]),
    round_index=st.integers(min_value=0, max_value=6),
    rank=st.integers(min_value=-1, max_value=7),
    bucket=st.sampled_from(["CPR", "DPR", "CPT", "HPR", "MPI", "ROUND"]),
    seconds=st.floats(
        min_value=0.0, max_value=1e3, allow_nan=False, allow_infinity=False
    ),
    nbytes=st.integers(min_value=0, max_value=1 << 30),
    label=st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz_-", min_size=0, max_size=12
    ),
    comm_s=st.one_of(
        st.none(),
        st.floats(
            min_value=0.0, max_value=1e3, allow_nan=False, allow_infinity=False
        ),
    ),
)


class TestSchemaV2:
    """Satellite: persist the round counter so partial rounds survive."""

    def test_partial_round_survives_roundtrip(self):
        log = TraceLog()
        log.record_compute(0, "CPR", 0.1)
        log.record_round(0.1, comm=0.0)
        # trailing partial round: charges recorded, round never closed
        log.record_compute(1, "HPR", 0.2)
        log.record_fault(1, "TIMEOUT", seconds=0.01)
        again = TraceLog.from_json(log.to_json())
        assert again.n_rounds == 1
        assert again.events == log.events
        # appending to the restored log continues in the right round
        again.record_compute(0, "CPR", 0.05)
        assert again.events[-1].round_index == 1

    def test_schema_v2_document_shape(self):
        log = TraceLog()
        log.record_round(0.5, comm=0.2)
        doc = json.loads(log.to_json())
        assert doc["schema"] == 2
        assert doc["rounds"] == 1
        (event,) = doc["events"]
        assert event["comm_s"] == 0.2
        # default-valued fields are omitted from the compact encoding
        assert "nbytes" not in event and "label" not in event

    def test_schema_v1_still_accepted(self):
        doc = json.dumps(
            {
                "schema": 1,
                "events": [
                    {
                        "kind": "compute",
                        "round_index": 0,
                        "rank": 0,
                        "bucket": "CPR",
                        "seconds": 0.1,
                        "nbytes": 0,
                    },
                    {
                        "kind": "round",
                        "round_index": 0,
                        "rank": -1,
                        "bucket": "ROUND",
                        "seconds": 0.1,
                        "nbytes": 0,
                    },
                ],
            }
        )
        log = TraceLog.from_json(doc)
        assert log.n_rounds == 1  # v1 fallback: count round events
        assert log.events[0].comm_s is None

    @settings(max_examples=50, deadline=None)
    @given(
        events=st.lists(_EVENT_STRATEGY, max_size=30),
        extra_rounds=st.integers(min_value=0, max_value=3),
    )
    def test_roundtrip_property(self, events, extra_rounds):
        log = TraceLog()
        for e in events:
            log.events.append(e)
        log._round = (
            sum(1 for e in events if e.kind == "round") + extra_rounds
        )
        again = TraceLog.from_json(log.to_json())
        assert again.events == log.events
        assert again.n_rounds == log.n_rounds


class TestThreadModeAndDegradedLinks:
    """Satellite: accounting under multithread mode and degraded links."""

    def test_thread_scaling_applied_exactly_once(self):
        """The path timed → charge_compute → trace must divide by the
        thread speedup once: trace event, clock ledger, and round compute
        all agree on the scaled value."""
        cluster = SimCluster(
            2, network=NET, multithread=True, thread_speedup=4.0,
            trace=TraceLog(),
        )
        cluster.charge_compute(0, "CPR", 0.8)
        (event,) = [e for e in cluster.trace.events if e.kind == "compute"]
        assert event.seconds == pytest.approx(0.2)
        assert cluster.clocks[0].buckets["CPR"] == pytest.approx(0.2)
        duration = cluster.end_compute_phase()
        assert duration == pytest.approx(0.2)
        (s,) = cluster.trace.round_summaries()
        assert s.max_compute == pytest.approx(0.2)

    def test_mpi_bucket_never_thread_scaled(self):
        cluster = SimCluster(
            2, network=NET, multithread=True, thread_speedup=4.0,
            trace=TraceLog(),
        )
        seconds = cluster.charge_comm(0, 10**6)
        assert seconds == pytest.approx(NET.transfer_time(10**6, 2))

    @pytest.mark.parametrize("multithread", [False, True])
    def test_bytes_moved_matches_bytes_on_wire(self, rng, multithread):
        local = [
            np.cumsum(rng.normal(0, 0.05, 4096)).astype(np.float32)
            for _ in range(4)
        ]
        cluster = SimCluster(
            4, network=NET, multithread=multithread, trace=TraceLog()
        )
        res = hzccl_allreduce(
            cluster, local, CollectiveConfig(error_bound=1e-4, network=NET)
        )
        assert sum(s.bytes_moved for s in res.trace.round_summaries()) == (
            res.bytes_on_wire
        )
        _assert_invariant(res.trace)

    def test_invariant_under_degraded_links(self, rng):
        """Degraded links stretch per-rank comm events but not the
        modelled round exchange; the round event's own comm component
        keeps the invariant exact."""
        plan = FaultPlan(
            seed=3, degraded_links=((0, 1, 0.25), (2, 3, 0.5))
        )
        cluster = SimCluster(4, network=NET, trace=TraceLog(), faults=plan)
        local = [rng.normal(0, 1, 4096).astype(np.float32) for _ in range(4)]
        res = mpi_allreduce(cluster, local)
        summaries = _assert_invariant(res.trace)
        # the stretched per-rank transfer exceeds the round's modelled comm
        comm_events = [
            e.seconds for e in res.trace.events if e.kind == "comm"
        ]
        assert max(comm_events) > max(s.comm_time for s in summaries) * 1.5
        assert sum(s.bytes_moved for s in summaries) == res.bytes_on_wire

    def test_multithread_invariant_under_faults(self, rng):
        plan = FaultPlan(seed=11, drop_rate=0.1)
        cluster = SimCluster(
            4, network=NET, multithread=True, trace=TraceLog(), faults=plan
        )
        local = [
            np.cumsum(rng.normal(0, 0.05, 2048)).astype(np.float32)
            for _ in range(4)
        ]
        res = hzccl_allreduce(
            cluster, local, CollectiveConfig(error_bound=1e-4, network=NET)
        )
        _assert_invariant(res.trace)
