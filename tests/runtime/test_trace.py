"""Tests for the execution-trace subsystem."""

import numpy as np
import pytest

from repro.collectives import hzccl_allreduce, mpi_reduce_scatter
from repro.core.config import CollectiveConfig
from repro.runtime.cluster import SimCluster
from repro.runtime.network import NetworkModel
from repro.runtime.trace import TraceLog

NET = NetworkModel(latency_s=1e-6, bandwidth_Bps=1e9, congestion_per_log2=0.1)


class TestTraceLog:
    def test_round_counter(self):
        log = TraceLog()
        log.record_compute(0, "CPR", 0.1)
        log.record_round(0.2)
        log.record_comm(1, 0.05, 1000)
        log.record_round(0.1)
        assert log.n_rounds == 2

    def test_round_summaries(self):
        log = TraceLog()
        log.record_compute(0, "CPR", 0.10)
        log.record_compute(1, "CPR", 0.30)
        log.record_comm(0, 0.05, 4096)
        log.record_round(0.35)
        (summary,) = log.round_summaries()
        assert summary.max_compute == pytest.approx(0.30)
        assert summary.comm_time == pytest.approx(0.05)
        assert summary.bytes_moved == 4096
        assert summary.compute_bound

    def test_comm_bound_round(self):
        log = TraceLog()
        log.record_compute(0, "HPR", 0.01)
        log.record_comm(0, 0.5, 10**6)
        log.record_round(0.51)
        assert not log.round_summaries()[0].compute_bound

    def test_json_roundtrip(self, tmp_path):
        log = TraceLog()
        log.record_compute(2, "DPR", 0.25)
        log.record_comm(2, 0.1, 512)
        log.record_round(0.35)
        path = tmp_path / "trace.json"
        log.to_json(path)
        again = TraceLog.from_json(path.read_text())
        assert again.n_rounds == 1
        assert again.events == log.events

    def test_from_json_rejects_bad_schema(self):
        with pytest.raises(ValueError, match="schema"):
            TraceLog.from_json('{"schema": 9, "events": []}')

    def test_summaries_consume_events_once(self):
        """Regression: ``round_summaries`` must be one sweep over the event
        list, not a rescan per round (O(rounds × events) made long traces
        quadratic to post-process)."""

        class CountingList(list):
            iterations = 0

            def __iter__(self):
                CountingList.iterations += 1
                return super().__iter__()

        log = TraceLog()
        log.events = CountingList()
        for r in range(1000):
            log.record_compute(0, "CPR", 0.01)
            log.record_comm(0, 0.02, 64)
            log.record_round(0.03)
        CountingList.iterations = 0
        summaries = log.round_summaries()
        assert CountingList.iterations == 1
        assert len(summaries) == 1000
        assert all(s.bytes_moved == 64 for s in summaries)

    def test_summaries_match_naive_rescan(self):
        """The grouped sweep must agree with a per-round rescan oracle."""
        log = TraceLog()
        log.record_compute(0, "CPR", 0.10)
        log.record_compute(0, "CPR", 0.05)  # same rank accumulates
        log.record_compute(1, "HPR", 0.12)
        log.record_comm(0, 0.02, 128)
        log.record_comm(1, 0.07, 256)
        log.record_round(0.19)
        log.record_round(0.01)  # empty round: no compute, no comm
        log.record_comm(2, 0.30, 512)
        log.record_round(0.30)
        s = log.round_summaries()
        assert [x.round_index for x in s] == [0, 1, 2]
        assert s[0].max_compute == pytest.approx(0.15)
        assert s[0].comm_time == pytest.approx(0.07)
        assert s[0].bytes_moved == 384
        assert s[1].max_compute == 0.0 and s[1].bytes_moved == 0
        assert s[2].comm_time == pytest.approx(0.30)


class TestClusterIntegration:
    def test_collective_produces_trace(self, rng):
        local = [rng.normal(0, 1, 4003).astype(np.float32) for _ in range(4)]
        cluster = SimCluster(4, network=NET, trace=TraceLog())
        mpi_reduce_scatter(cluster, local)
        assert cluster.trace.n_rounds == 3  # N − 1 ring rounds
        summaries = cluster.trace.round_summaries()
        assert all(s.bytes_moved > 0 for s in summaries)

    def test_round_durations_sum_to_total(self, rng):
        local = [rng.normal(0, 1, 4003).astype(np.float32) for _ in range(4)]
        cluster = SimCluster(4, network=NET, trace=TraceLog())
        res = mpi_reduce_scatter(cluster, local)
        total = sum(s.duration for s in cluster.trace.round_summaries())
        assert total == pytest.approx(res.total_time)

    def test_hzccl_trace_shows_compression_phases(self, rng):
        local = [
            np.cumsum(rng.normal(0, 0.05, 8003)).astype(np.float32) for _ in range(4)
        ]
        config = CollectiveConfig(error_bound=1e-4, network=NET)
        cluster = SimCluster(4, network=NET, trace=TraceLog())
        hzccl_allreduce(cluster, local, config)
        buckets = {e.bucket for e in cluster.trace.events if e.kind == "compute"}
        assert {"CPR", "HPR", "DPR"} <= buckets

    def test_bytes_per_round_available(self, rng):
        local = [rng.normal(0, 1, 4003).astype(np.float32) for _ in range(3)]
        cluster = SimCluster(3, network=NET, trace=TraceLog())
        mpi_reduce_scatter(cluster, local)
        per_round = cluster.trace.bytes_per_round()
        assert len(per_round) == 2

    def test_no_trace_by_default(self, rng):
        cluster = SimCluster(3, network=NET)
        assert cluster.trace is None
        mpi_reduce_scatter(cluster, [rng.normal(0, 1, 99).astype(np.float32)] * 3)
