"""Unit + property tests for the ring schedule."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.runtime.topology import Ring


class TestNeighbours:
    def test_successor_wraps(self):
        ring = Ring(4)
        assert ring.successor(3) == 0
        assert ring.predecessor(0) == 3

    def test_two_ranks(self):
        ring = Ring(2)
        assert ring.successor(0) == 1
        assert ring.predecessor(1) == 0


class TestReduceScatterSchedule:
    def test_send_recv_relationship(self):
        """What rank i receives in round j is what its predecessor sends."""
        ring = Ring(5)
        for j in range(4):
            for i in range(5):
                assert ring.recv_block(i, j) == ring.send_block(ring.predecessor(i), j)

    def test_owned_block_reduced_last(self):
        """The block a rank owns is the one it receives in the final round."""
        ring = Ring(6)
        for i in range(6):
            assert ring.recv_block(i, 5 - 1) == ring.owned_block(i)

    @pytest.mark.parametrize("n", [2, 3, 7, 16])
    def test_owned_block_accumulates_all_contributions(self, n):
        """Abstract simulation: after N−1 rounds the owned block's partial
        carries contributions from every rank."""
        ring = Ring(n)
        # partial[i][k] = set of ranks whose data is folded into rank i's
        # current partial of block k
        partial = [{k: {i} for k in range(n)} for i in range(n)]
        for j in range(n - 1):
            outbox = [partial[i][ring.send_block(i, j)] for i in range(n)]
            for i in range(n):
                blk = ring.recv_block(i, j)
                partial[i][blk] = partial[i][blk] | outbox[ring.predecessor(i)]
        for i in range(n):
            assert partial[i][ring.owned_block(i)] == set(range(n))

    def test_owned_blocks_are_distinct(self):
        n = 7
        ring = Ring(n)
        assert len({ring.owned_block(i) for i in range(n)}) == n

    def test_out_of_range_rank(self):
        with pytest.raises(IndexError):
            Ring(4).send_block(4, 0)

    def test_out_of_range_round(self):
        with pytest.raises(IndexError):
            Ring(4).send_block(0, 3)

    def test_single_rank_ring(self):
        ring = Ring(1)
        assert ring.owned_block(0) == 0

    def test_single_rank_ring_has_no_rounds(self):
        """Regression: the round bound used ``max(n−1, 1)``, so a 1-rank
        ring accepted round 0 — but it has zero exchange rounds."""
        with pytest.raises(IndexError):
            Ring(1).send_block(0, 0)
        with pytest.raises(IndexError):
            Ring(1).recv_block(0, 0)
        with pytest.raises(IndexError):
            Ring(1).allgather_send_block(0, 0)


class TestAllgatherSchedule:
    def test_first_round_sends_owned(self):
        ring = Ring(5)
        for i in range(5):
            assert ring.allgather_send_block(i, 0) == ring.owned_block(i)

    def test_forwards_previous_receipt(self):
        """In round j > 0, rank i forwards the block it received in j−1."""
        ring = Ring(5)
        for j in range(1, 4):
            for i in range(5):
                received = ring.allgather_send_block(ring.predecessor(i), j - 1)
                assert ring.allgather_send_block(i, j) == received

    @given(n=st.integers(2, 64))
    def test_every_rank_gets_every_block(self, n):
        ring = Ring(n)
        for i in range(n):
            got = {ring.owned_block(i)}
            for j in range(n - 1):
                got.add(ring.allgather_send_block(ring.predecessor(i), j))
            assert got == set(range(n))


class TestValidation:
    def test_rejects_empty_ring(self):
        with pytest.raises(ValueError):
            Ring(0)

    @given(n=st.integers(2, 32), j=st.integers(0, 30))
    def test_schedule_is_valid_block(self, n, j):
        ring = Ring(n)
        if j >= n - 1:
            return
        for i in range(n):
            assert 0 <= ring.send_block(i, j) < n
            assert 0 <= ring.recv_block(i, j) < n
