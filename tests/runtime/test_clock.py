"""Unit tests for virtual clocks and breakdown reports."""

import pytest

from repro.runtime.clock import BUCKETS, Breakdown, VirtualClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        clock = VirtualClock()
        assert clock.total == 0.0
        assert set(clock.buckets) == set(BUCKETS)

    def test_charge_accumulates(self):
        clock = VirtualClock()
        clock.charge("CPR", 0.5)
        clock.charge("CPR", 0.25)
        assert clock.buckets["CPR"] == 0.75
        assert clock.total == 0.75

    def test_unknown_bucket(self):
        with pytest.raises(KeyError, match="bucket"):
            VirtualClock().charge("XYZ", 1.0)

    def test_negative_charge(self):
        with pytest.raises(ValueError):
            VirtualClock().charge("MPI", -1.0)

    def test_copy_is_independent(self):
        clock = VirtualClock()
        clock.charge("DPR", 1.0)
        other = clock.copy()
        other.charge("DPR", 1.0)
        assert clock.buckets["DPR"] == 1.0


class TestBreakdown:
    def test_from_clocks_averages(self):
        a, b = VirtualClock(), VirtualClock()
        a.charge("CPR", 2.0)
        b.charge("CPR", 4.0)
        bd = Breakdown.from_clocks([a, b], total_time=5.0)
        assert bd.buckets["CPR"] == 3.0
        assert bd.total_time == 5.0

    def test_percentages(self):
        clock = VirtualClock()
        clock.charge("MPI", 3.0)
        clock.charge("CPR", 1.0)
        bd = Breakdown.from_clocks([clock], total_time=4.0)
        pct = bd.percentages()
        assert pct["MPI"] == pytest.approx(75.0)
        assert pct["CPR"] == pytest.approx(25.0)
        assert sum(pct.values()) == pytest.approx(100.0)

    def test_percentages_empty(self):
        pct = Breakdown().percentages()
        assert all(v == 0.0 for v in pct.values())

    def test_doc_time_includes_hpr(self):
        clock = VirtualClock()
        for bucket, value in [("CPR", 1.0), ("DPR", 2.0), ("CPT", 3.0), ("HPR", 4.0), ("MPI", 100.0)]:
            clock.charge(bucket, value)
        bd = Breakdown.from_clocks([clock], total_time=110.0)
        assert bd.doc_time == 10.0
        assert bd.mpi_time == 100.0
