"""Unit tests for the SPMD cluster simulator."""

import time

import pytest

from repro.runtime.cluster import SimCluster, measured


@pytest.fixture()
def cluster(fast_network):
    return SimCluster(n_ranks=4, network=fast_network)


class TestCharging:
    def test_compute_charge_lands_in_bucket(self, cluster):
        cluster.charge_compute(0, "CPR", 0.5)
        assert cluster.clocks[0].buckets["CPR"] == 0.5

    def test_multithread_scales_compute(self, fast_network):
        mt = SimCluster(4, network=fast_network, multithread=True, thread_speedup=5.0)
        mt.charge_compute(0, "DPR", 1.0)
        assert mt.clocks[0].buckets["DPR"] == pytest.approx(0.2)

    def test_multithread_never_scales_comm(self, fast_network):
        st = SimCluster(4, network=fast_network)
        mt = SimCluster(4, network=fast_network, multithread=True)
        assert st.charge_comm(0, 10**6) == mt.charge_comm(0, 10**6)

    def test_comm_uses_network_model(self, cluster, fast_network):
        seconds = cluster.charge_comm(1, 10**6)
        assert seconds == fast_network.transfer_time(10**6, 4)
        assert cluster.clocks[1].buckets["MPI"] == seconds

    def test_timed_context_measures(self, cluster):
        with cluster.timed(2, "CPT"):
            time.sleep(0.01)
        assert cluster.clocks[2].buckets["CPT"] >= 0.009

    def test_comm_congestion_follows_declared_flows(self, cluster, fast_network):
        """``n_flows`` overrides the job-wide default: an 8-rank
        intra-node exchange on a big job is charged 8-way congestion."""
        assert cluster.charge_comm(
            0, 10**6, n_flows=2
        ) == fast_network.transfer_time(10**6, 2)

    def test_comm_link_scale_divides_time(self, cluster, fast_network):
        fast = cluster.charge_comm(0, 10**6, link_scale=4.0)
        assert fast == pytest.approx(fast_network.transfer_time(10**6, 4) / 4.0)


class TestRounds:
    def test_round_takes_max_compute_plus_comm(self, cluster, fast_network):
        cluster.charge_compute(0, "CPR", 0.1)
        cluster.charge_compute(1, "CPR", 0.4)
        duration = cluster.end_round(max_message_bytes=10**6)
        assert duration == pytest.approx(0.4 + fast_network.ring_round_time(10**6, 4))
        assert cluster.total_time == pytest.approx(duration)

    def test_round_resets_compute_accumulator(self, cluster):
        cluster.charge_compute(0, "CPR", 0.4)
        cluster.end_round(0)
        d2 = cluster.end_round(0)
        assert d2 == pytest.approx(cluster.network.ring_round_time(0, 4))

    def test_compute_phase_has_no_comm(self, cluster):
        cluster.charge_compute(3, "CPR", 0.2)
        assert cluster.end_compute_phase() == pytest.approx(0.2)

    def test_round_congestion_follows_declared_flows(self, cluster, fast_network):
        narrow = cluster.end_round(max_message_bytes=10**6, n_flows=2)
        wide = cluster.end_round(max_message_bytes=10**6)
        assert narrow == pytest.approx(fast_network.ring_round_time(10**6, 2))
        assert wide == pytest.approx(fast_network.ring_round_time(10**6, 4))
        assert narrow < wide

    def test_round_link_scale_divides_comm(self, cluster, fast_network):
        scaled = cluster.end_round(max_message_bytes=10**6, link_scale=4.0)
        assert scaled == pytest.approx(
            fast_network.ring_round_time(10**6, 4) / 4.0
        )

    def test_reset(self, cluster):
        cluster.charge_compute(0, "CPR", 1.0)
        cluster.end_compute_phase()
        cluster.reset()
        assert cluster.total_time == 0.0
        assert cluster.clocks[0].total == 0.0


class TestBreakdown:
    def test_breakdown_averages_ranks(self, cluster):
        cluster.charge_compute(0, "HPR", 2.0)
        cluster.charge_compute(1, "HPR", 4.0)
        bd = cluster.breakdown()
        assert bd.buckets["HPR"] == pytest.approx(1.5)  # (2+4+0+0)/4

    def test_breakdown_total_is_critical_path(self, cluster):
        cluster.charge_compute(0, "CPR", 0.3)
        cluster.end_round(0)
        assert cluster.breakdown().total_time == cluster.total_time


class TestValidation:
    def test_rejects_zero_ranks(self, fast_network):
        with pytest.raises(ValueError):
            SimCluster(0, network=fast_network)

    def test_rejects_bad_thread_speedup(self, fast_network):
        with pytest.raises(ValueError):
            SimCluster(2, network=fast_network, thread_speedup=0)

    def test_measured_helper(self):
        with measured() as out:
            time.sleep(0.005)
        assert out[0] >= 0.004
