"""Integration: homomorphic collectives over 2-D/3-D-compressed operands.

The collectives flatten inputs (1-D Lorenzo), but users can also reduce
N-D-compressed fields directly through the engine — these tests exercise
that path end to end on dataset-shaped volumes, including a hand-rolled
ring reduction over 3-D streams.
"""

import numpy as np
import pytest

from repro.compression import FZLightND
from repro.compression.common import dequantize, quantize
from repro.datasets import snapshot_series
from repro.homomorphic import HZDynamic
from repro.runtime.topology import Ring


class TestVolumeReduction:
    def test_ring_style_reduction_over_3d_streams(self):
        """Fold N 3-D-compressed snapshots in ring order; compare with the
        integer-domain oracle over the whole volume."""
        n = 4
        volumes = snapshot_series("hurricane", n, scale=0.004, seed=6)
        eb = 1e-3 * float(volumes[0].max() - volumes[0].min())
        comp = FZLightND()
        engine = HZDynamic()
        fields = [comp.compress(v, abs_eb=eb) for v in volumes]

        ring = Ring(n)
        acc = fields[0]
        for j in range(1, n):
            acc = engine.add(acc, fields[j])

        oracle = dequantize(
            sum(quantize(v.ravel(), eb).astype(np.int64) for v in volumes), eb
        ).reshape(volumes[0].shape)
        np.testing.assert_array_equal(comp.decompress(acc), oracle)
        assert ring.n == n  # topology helper stays consistent

    def test_tree_reduction_matches_ring_order(self):
        n = 5
        volumes = snapshot_series("nyx", n, scale=0.002, seed=8)
        eb = 1e-3 * float(volumes[0].max() - volumes[0].min())
        comp = FZLightND()
        engine = HZDynamic()
        fields = [comp.compress(v, abs_eb=eb) for v in volumes]
        seq = engine.reduce(list(fields), order="sequential")
        tree = engine.reduce(list(fields), order="tree")
        assert seq.to_bytes() == tree.to_bytes()

    def test_mean_of_volumes(self):
        from repro.homomorphic import mean_of

        n = 3
        volumes = snapshot_series("sim2", n, scale=0.004, seed=4)
        eb = 1e-3 * float(volumes[0].max() - volumes[0].min())
        comp = FZLightND()
        fields = [comp.compress(v, abs_eb=eb) for v in volumes]
        # mean_of decodes through the generic 1-D path, which is only valid
        # for 1-D streams — the N-D mean goes through decompress + divide
        total = HZDynamic().reduce(list(fields))
        mean = comp.decompress(total) / n
        float_mean = np.mean(np.stack(volumes).astype(np.float64), axis=0)
        assert np.abs(mean - float_mean).max() <= eb * 1.001

    def test_error_bound_after_reduction(self):
        n = 6
        volumes = snapshot_series("sim1", n, scale=0.004, seed=2)
        eb = 1e-4 * float(volumes[0].max() - volumes[0].min())
        comp = FZLightND()
        engine = HZDynamic()
        total = engine.reduce([comp.compress(v, abs_eb=eb) for v in volumes])
        exact = np.sum(np.stack(volumes).astype(np.float64), axis=0)
        err = np.abs(comp.decompress(total).astype(np.float64) - exact).max()
        assert err <= n * eb * 1.001

    def test_pipeline_mix_reported_for_volumes(self):
        volumes = snapshot_series("sim1", 2, scale=0.004, seed=2)
        eb = 1e-3 * float(volumes[0].max() - volumes[0].min())
        comp = FZLightND()
        engine = HZDynamic()
        engine.add(comp.compress(volumes[1], abs_eb=eb), comp.compress(volumes[0], abs_eb=eb))
        assert engine.stats.total > 0
        assert engine.stats.percentages.sum() == pytest.approx(100.0)
