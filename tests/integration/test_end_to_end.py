"""End-to-end integration tests: datasets → compression → collectives.

These runs chain the whole system the way the benchmark harness does,
at test-friendly scales.
"""

import numpy as np
import pytest

from repro import HZCCL
from repro.collectives import split_blocks
from repro.compression import FZLight, OmpSZp, check_error_bound, evaluate_quality
from repro.core.config import CollectiveConfig
from repro.datasets import dataset_names, generate_field, generate_pair
from repro.homomorphic import HZDynamic
from repro.runtime.topology import Ring

SCALE = 0.005


class TestCompressionOnAllDatasets:
    @pytest.mark.parametrize("name", dataset_names())
    @pytest.mark.parametrize("rel", [1e-2, 1e-4])
    def test_both_compressors_bound_error(self, name, rel):
        data = generate_field(name, 0, scale=SCALE, seed=7).ravel()
        for comp in (FZLight(), OmpSZp()):
            from repro.compression.common import resolve_error_bound

            eb = resolve_error_bound(data, rel_eb=rel)
            field = comp.compress(data, abs_eb=eb)
            out = comp.decompress(field)
            assert check_error_bound(data, out, eb), (name, type(comp).__name__)

    @pytest.mark.parametrize("name", dataset_names())
    def test_quality_report_consistent(self, name):
        data = generate_field(name, 0, scale=SCALE, seed=7).ravel()
        comp = FZLight()
        field = comp.compress(data, rel_eb=1e-3)
        report = evaluate_quality(data, comp.decompress(field), field.nbytes)
        assert report.compression_ratio == pytest.approx(field.compression_ratio)
        assert report.max_rel_error <= 1.1e-3
        assert report.nrmse <= report.max_rel_error


class TestHomomorphicOnAllDatasets:
    @pytest.mark.parametrize("name", dataset_names())
    def test_reduce_two_fields(self, name):
        a, b = generate_pair(name, scale=SCALE, seed=7)
        a, b = a.ravel(), b.ravel()
        comp = FZLight()
        from repro.compression.common import dequantize, quantize, resolve_error_bound

        eb = resolve_error_bound(a, rel_eb=1e-3)
        csum = HZDynamic().add(comp.compress(a, abs_eb=eb), comp.compress(b, abs_eb=eb))
        oracle = dequantize(
            quantize(a, eb).astype(np.int64) + quantize(b, eb).astype(np.int64), eb
        )
        np.testing.assert_array_equal(comp.decompress(csum), oracle)


class TestCollectivePipelines:
    @pytest.fixture()
    def lib(self, fast_network):
        return HZCCL(CollectiveConfig(error_bound=1e-4, network=fast_network))

    def test_allreduce_on_seismic_snapshots(self, lib):
        local = [
            generate_field("sim1", i, scale=SCALE, seed=7).ravel() for i in range(4)
        ]
        res = lib.allreduce(local)
        exact = np.sum(np.stack(local).astype(np.float64), axis=0)
        assert np.abs(res.outputs[0].astype(np.float64) - exact).max() <= 4 * 1e-4 * 1.01

    def test_reduce_scatter_on_climate_fields(self, lib):
        local = [
            generate_field("cesm", i, scale=SCALE, seed=7).ravel() for i in range(3)
        ]
        res = lib.reduce_scatter(local)
        exact = np.sum(np.stack(local).astype(np.float64), axis=0)
        ring = Ring(3)
        blocks = split_blocks(exact, 3)
        for i in range(3):
            err = np.abs(
                res.outputs[i].astype(np.float64) - blocks[ring.owned_block(i)]
            ).max()
            assert err <= 3 * 1e-4 * 1.01

    def test_kernels_agree_within_bounds(self, lib, rng):
        local = [rng.normal(0, 1, 8000).astype(np.float32) for _ in range(4)]
        hz = lib.allreduce(local, kernel="hzccl").outputs[0]
        cc = lib.allreduce(local, kernel="ccoll").outputs[0]
        mpi = lib.allreduce(local, kernel="mpi").outputs[0]
        assert np.abs(hz - mpi).max() <= 5 * 1e-4
        assert np.abs(cc - mpi).max() <= 10 * 1e-4


class TestWireTransportSimulation:
    def test_collective_over_serialised_stream(self, fast_network):
        """Round-trip a compressed block through the byte stream mid-
        collective, as real network transport would."""
        from repro.compression.format import from_bytes

        comp = FZLight(n_threadblocks=18)
        rng = np.random.default_rng(3)
        x = np.cumsum(rng.normal(0, 0.1, 20_000)).astype(np.float32)
        y = np.cumsum(rng.normal(0, 0.1, 20_000)).astype(np.float32)
        cx = comp.compress(x, abs_eb=1e-4)
        cy = comp.compress(y, abs_eb=1e-4)
        # serialise → bytes "on the wire" → parse → homomorphic add
        cy_wire = from_bytes(cy.to_bytes())
        direct = HZDynamic().add(cx, cy)
        via_wire = HZDynamic().add(cx, cy_wire)
        assert direct.to_bytes() == via_wire.to_bytes()


class TestScalingBehaviour:
    def test_more_ranks_more_rounds_more_time(self, fast_network, rng):
        config = CollectiveConfig(error_bound=1e-4, network=fast_network)
        times = []
        for n in (2, 4, 8):
            local = [rng.normal(0, 1, 4096).astype(np.float32) for _ in range(n)]
            lib = HZCCL(config)
            times.append(lib.allreduce(local).total_time)
        assert times[0] < times[-1]

    def test_pipeline_stats_flow_through_allreduce(self, fast_network, rng):
        config = CollectiveConfig(error_bound=1e-4, network=fast_network)
        lib = HZCCL(config)
        local = [np.zeros(4096, dtype=np.float32) for _ in range(4)]
        res = lib.allreduce(local)
        assert res.pipeline_stats is not None
        # all-zero data ⇒ every homomorphic block hits pipeline 1
        assert res.pipeline_stats.percentages[0] == pytest.approx(100.0)
