"""Cross-implementation and cross-theory validation.

Three independent artefacts describe every collective: the
round-synchronous implementation, the message-level (point-to-point)
implementation, and the closed-form analysis.  These tests hold all three
to each other on dataset-driven workloads.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives import (
    hzccl_allreduce,
    p2p_hzccl_allreduce,
    p2p_reduce_scatter,
    mpi_reduce_scatter,
)
from repro.core.analysis import error_bounds
from repro.core.config import CollectiveConfig
from repro.datasets import snapshot_series
from repro.runtime.cluster import SimCluster
from repro.runtime.communicator import Communicator
from repro.runtime.network import NetworkModel

NET = NetworkModel(latency_s=1e-6, bandwidth_Bps=1e9, congestion_per_log2=0.1)


class TestImplementationsAgree:
    @pytest.mark.parametrize("name", ["sim1", "hurricane"])
    def test_hzccl_bulk_vs_p2p_on_datasets(self, name):
        snapshots = [
            s.ravel()[:40_000] for s in snapshot_series(name, 4, scale=0.01, seed=9)
        ]
        config = CollectiveConfig(error_bound=1e-4, network=NET)
        bulk = hzccl_allreduce(SimCluster(4, network=NET), snapshots, config).outputs
        p2p = p2p_hzccl_allreduce(Communicator(4, network=NET), snapshots, config)
        for a, b in zip(bulk, p2p):
            np.testing.assert_array_equal(a, b)

    @given(n=st.integers(2, 6), seed=st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_plain_rs_property(self, n, seed):
        rng = np.random.default_rng(seed)
        local = [rng.normal(0, 1, 1000 + seed % 97).astype(np.float32) for _ in range(n)]
        bulk = mpi_reduce_scatter(SimCluster(n, network=NET), local).outputs
        p2p = p2p_reduce_scatter(Communicator(n, network=NET), local)
        for a, b in zip(bulk, p2p):
            np.testing.assert_array_equal(a, b)


class TestTheoryMatchesExecution:
    @pytest.mark.parametrize("n", [2, 5, 8])
    @pytest.mark.parametrize("eb", [1e-2, 1e-4])
    def test_hzccl_error_within_analysis_bound(self, rng, n, eb):
        local = [rng.normal(0, 1, 9000).astype(np.float32) for _ in range(n)]
        exact = np.sum(np.stack(local).astype(np.float64), axis=0)
        config = CollectiveConfig(error_bound=eb, network=NET)
        res = hzccl_allreduce(SimCluster(n, network=NET), local, config)
        bound = error_bounds(n, eb, "hzccl")
        err = np.abs(res.outputs[0].astype(np.float64) - exact).max()
        assert err <= bound.max_error * 1.001

    def test_ccoll_error_within_analysis_bound(self, rng):
        from repro.collectives import ccoll_allreduce

        n, eb = 6, 1e-3
        local = [
            np.cumsum(rng.normal(0, 0.05, 9000)).astype(np.float32) for _ in range(n)
        ]
        exact = np.sum(np.stack(local).astype(np.float64), axis=0)
        config = CollectiveConfig(error_bound=eb, network=NET)
        res = ccoll_allreduce(SimCluster(n, network=NET), local, config)
        # the allreduce adds one more requantisation chain on the gather
        bound = error_bounds(n, eb, "ccoll").max_error + n * eb
        err = np.abs(res.outputs[0].astype(np.float64) - exact).max()
        assert err <= bound

    def test_rms_scaling_with_n(self, rng):
        """RMS error grows ~sqrt(N), not N — the statistical half of the
        accuracy story."""
        eb = 1e-3
        rms = {}
        for n in (4, 16):
            local = [rng.normal(0, 1, 20_000).astype(np.float32) for _ in range(n)]
            exact = np.sum(np.stack(local).astype(np.float64), axis=0)
            config = CollectiveConfig(error_bound=eb, network=NET)
            res = hzccl_allreduce(SimCluster(n, network=NET), local, config)
            err = res.outputs[0].astype(np.float64) - exact
            rms[n] = float(np.sqrt(np.mean(err**2)))
        growth = rms[16] / rms[4]
        assert 1.4 < growth < 3.2  # sqrt(4) = 2 ± sampling noise


class TestTimingConsistency:
    def test_p2p_makespan_within_factor_of_bulk_total(self, rng):
        """The causal message-level clock and the bulk-synchronous round
        clock are different approximations of the same schedule; they must
        agree within a small factor on communication-dominated runs."""
        n = 6
        local = [rng.normal(0, 1, 200_000).astype(np.float32) for _ in range(n)]
        slow_net = NetworkModel(latency_s=1e-6, bandwidth_Bps=5e7, congestion_per_log2=0)
        bulk = mpi_reduce_scatter(SimCluster(n, network=slow_net), local)
        comm = Communicator(n, network=slow_net)
        p2p_reduce_scatter(comm, local)
        ratio = comm.makespan / bulk.total_time
        assert 0.4 < ratio < 2.5
