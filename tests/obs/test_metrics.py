"""Tests for the process-wide metrics registry."""

import threading

import pytest

from repro.obs.metrics import METRICS, MetricsRegistry, metrics_enabled


class TestDisabledFastPath:
    def test_disabled_by_default(self):
        assert MetricsRegistry().enabled is False
        assert METRICS.enabled is False

    def test_disabled_mutations_record_nothing(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.gauge("b", 1.0)
        reg.observe("c", 2.0)
        assert reg.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


class TestRecording:
    def test_counters_accumulate(self):
        reg = MetricsRegistry(enabled=True)
        reg.inc("wire.bytes", 100)
        reg.inc("wire.bytes", 28)
        reg.inc("calls")
        assert reg.counter("wire.bytes") == 128
        assert reg.counter("calls") == 1
        assert reg.counter("missing") == 0.0

    def test_gauges_last_write_wins(self):
        reg = MetricsRegistry(enabled=True)
        reg.gauge("g", 1.0)
        reg.gauge("g", 7.5)
        assert reg.gauges() == {"g": 7.5}

    def test_histogram_summary(self):
        reg = MetricsRegistry(enabled=True)
        for v in (1.0, 2.0, 4.0, 9.0):
            reg.observe("h", v)
        hist = reg.histogram("h")
        assert hist.count == 4
        assert hist.mean == pytest.approx(4.0)
        assert hist.vmin == 1.0 and hist.vmax == 9.0
        d = hist.as_dict()
        assert d["count"] == 4 and d["total"] == pytest.approx(16.0)

    def test_empty_histogram_dict_is_finite(self):
        reg = MetricsRegistry(enabled=True)
        reg.observe("h", 1.0)
        reg.reset()
        assert reg.histogram("h") is None

    def test_reset_keeps_enabled_flag(self):
        reg = MetricsRegistry(enabled=True)
        reg.inc("x")
        reg.reset()
        assert reg.enabled is True
        assert reg.counters() == {}

    def test_snapshot_is_json_shaped(self):
        reg = MetricsRegistry(enabled=True)
        reg.inc("c", 2)
        reg.gauge("g", 3)
        reg.observe("h", 4)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 2.0}
        assert snap["gauges"] == {"g": 3.0}
        assert snap["histograms"]["h"]["count"] == 1

    def test_threaded_increments_are_not_lost(self):
        reg = MetricsRegistry(enabled=True)

        def work():
            for _ in range(1000):
                reg.inc("n")

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("n") == 4000


class TestConcurrentReaders:
    """Readers share the writer lock and hand out copies (DESIGN §16):
    a polling thread — e.g. the aggregation service's event loop — must
    never see torn histogram state or have its snapshot mutate later."""

    def test_histogram_reads_are_internally_consistent_under_writes(self):
        reg = MetricsRegistry(enabled=True)
        stop = threading.Event()
        torn = []

        def writer():
            v = 0
            while not stop.is_set():
                reg.observe("h", float(v % 17 + 1))
                v += 1

        def reader():
            for _ in range(2000):
                hist = reg.histogram("h")
                if hist is None:
                    continue
                # count/total/buckets were copied under one lock hold:
                # the bucket sketch must account for every observation.
                if sum(hist.buckets.values()) != hist.count:
                    torn.append((hist.count, dict(hist.buckets)))

        threads = [threading.Thread(target=writer) for _ in range(2)]
        threads += [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        stop.set()
        for t in threads:
            t.join()
        assert not torn

    def test_histogram_returns_independent_copy(self):
        reg = MetricsRegistry(enabled=True)
        reg.observe("h", 2.0)
        snap = reg.histogram("h")
        reg.observe("h", 4.0)
        assert snap.count == 1  # later writes don't leak into the snapshot
        assert reg.histogram("h").count == 2

    def test_counters_snapshot_is_stable_under_writes(self):
        reg = MetricsRegistry(enabled=True)
        reg.inc("a")
        snap = reg.counters()
        reg.inc("b")
        assert snap == {"a": 1.0}


class TestScopedEnable:
    def test_context_manager_enables_and_restores(self):
        reg = MetricsRegistry()
        with metrics_enabled(reg) as inner:
            assert inner is reg
            assert reg.enabled
            reg.inc("x")
        assert not reg.enabled
        assert reg.counter("x") == 1  # values survive, flag restored

    def test_context_manager_resets_prior_values(self):
        reg = MetricsRegistry(enabled=True)
        reg.inc("stale")
        with metrics_enabled(reg):
            assert reg.counter("stale") == 0.0
        assert reg.enabled  # prior enabled state restored

    def test_reset_false_keeps_values(self):
        reg = MetricsRegistry(enabled=True)
        reg.inc("keep")
        with metrics_enabled(reg, reset=False):
            assert reg.counter("keep") == 1
