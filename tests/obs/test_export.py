"""Tests for the trace exporters (`repro.obs.export`)."""

import csv
import io
import json

import numpy as np
import pytest

from repro.core.api import HZCCL
from repro.obs.export import (
    bucket_csv,
    chrome_trace,
    diff_text,
    summary_text,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import MetricsRegistry
from repro.runtime.clock import BUCKETS
from repro.runtime.trace import TraceLog


@pytest.fixture(scope="module")
def trace():
    rng = np.random.default_rng(11)
    data = [
        np.cumsum(rng.standard_normal(2048)).astype(np.float32)
        for _ in range(4)
    ]
    return HZCCL(trace=True).allreduce(data).trace


class TestChromeTrace:
    def test_document_validates(self, trace):
        validate_chrome_trace(chrome_trace(trace))

    def test_expected_event_phases(self, trace):
        doc = chrome_trace(trace)
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert {"M", "B", "E", "X", "C"} <= phases

    def test_rank_lanes_are_named(self, trace):
        doc = chrome_trace(trace, name="unit")
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta}
        assert "unit" in names  # process_name
        assert {"rank 0", "rank 1", "rank 2", "rank 3"} <= names

    def test_bytes_counter_totals_match(self, trace):
        doc = chrome_trace(trace)
        counted = sum(
            e["args"]["bytes"]
            for e in doc["traceEvents"]
            if e["ph"] == "C"
        )
        expected = sum(s.bytes_moved for s in trace.round_summaries())
        assert counted == expected

    def test_fault_instants(self):
        log = TraceLog()
        log.record_fault(2, "DROP", seconds=0.0)
        log.record_round(0.1, comm=0.1)
        doc = chrome_trace(log)
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == 1
        assert instants[0]["name"] == "DROP"
        assert instants[0]["tid"] == 3  # rank lane = rank + 1
        validate_chrome_trace(doc)

    def test_write_round_trips(self, trace, tmp_path):
        path = write_chrome_trace(trace, tmp_path / "out.json")
        validate_chrome_trace(json.loads(path.read_text()))


class TestValidator:
    def test_rejects_non_document(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({"events": []})

    def test_rejects_unknown_phase(self):
        doc = {"traceEvents": [{"ph": "Z", "name": "x"}]}
        with pytest.raises(ValueError, match="unknown phase"):
            validate_chrome_trace(doc)

    def test_rejects_missing_required_key(self):
        doc = {"traceEvents": [{"ph": "X", "name": "x", "ts": 0, "dur": 1}]}
        with pytest.raises(ValueError, match="missing"):
            validate_chrome_trace(doc)

    def test_rejects_negative_timestamp(self):
        doc = {
            "traceEvents": [
                {"ph": "X", "name": "x", "ts": -1, "dur": 0,
                 "pid": 0, "tid": 0}
            ]
        }
        with pytest.raises(ValueError, match="bad ts"):
            validate_chrome_trace(doc)

    def test_rejects_unbalanced_begin(self):
        doc = {
            "traceEvents": [
                {"ph": "B", "name": "x", "ts": 0, "pid": 0, "tid": 0}
            ]
        }
        with pytest.raises(ValueError, match="unbalanced"):
            validate_chrome_trace(doc)

    def test_rejects_end_without_begin(self):
        doc = {"traceEvents": [{"ph": "E", "ts": 0, "pid": 0, "tid": 0}]}
        with pytest.raises(ValueError, match="E without matching B"):
            validate_chrome_trace(doc)


class TestBucketCsv:
    def test_shape_and_totals(self, trace):
        rows = list(csv.DictReader(io.StringIO(bucket_csv(trace))))
        assert len(rows) == trace.n_rounds
        header = rows[0].keys()
        for bucket in list(BUCKETS) + ["WAIT"]:
            assert bucket in header
        summaries = trace.round_summaries()
        for row, s in zip(rows, summaries):
            assert int(row["round"]) == s.round_index
            assert float(row["duration"]) == pytest.approx(
                s.duration, rel=1e-6
            )
            assert int(row["bytes_moved"]) == s.bytes_moved

    def test_wait_column(self):
        log = TraceLog()
        log.record_compute(0, "CPR", 0.1)
        log.record_fault(0, "TIMEOUT", seconds=0.25)
        log.record_round(0.45, comm=0.1)
        (row,) = csv.DictReader(io.StringIO(bucket_csv(log)))
        assert float(row["WAIT"]) == pytest.approx(0.25)
        assert float(row["wait_time"]) == pytest.approx(0.25)


class TestTextReports:
    def test_summary_mentions_rounds_and_buckets(self, trace):
        text = summary_text(trace)
        assert "rounds:" in text
        assert "bucket seconds" in text
        assert "slowest rounds:" in text

    def test_summary_includes_metrics(self, trace):
        reg = MetricsRegistry(enabled=True)
        reg.inc("wire.bytes", 123)
        reg.observe("kernel.numpy.encode.gbps", 2.0)
        text = summary_text(trace, metrics=reg)
        assert "wire.bytes = 123" in text
        assert "kernel.numpy.encode.gbps" in text

    def test_summary_reports_wait(self):
        log = TraceLog()
        log.record_fault(0, "TIMEOUT", seconds=0.5)
        log.record_round(0.5, comm=0.0)
        assert "fault-wait on critical path" in summary_text(log)

    def test_diff_shows_deltas_and_faults(self, trace):
        other = TraceLog()
        other.record_compute(0, "CPR", 0.1)
        other.record_fault(0, "DROP")
        other.record_round(0.1, comm=0.0)
        text = diff_text(trace, other)
        assert f"rounds: {trace.n_rounds} -> 1" in text
        assert "total:" in text and "->" in text
        assert "fault DROP: 0 -> 1" in text

    def test_diff_identical_traces(self, trace):
        text = diff_text(trace, trace)
        assert "+0.0%" in text
