"""Tests for span-tree reconstruction (`repro.obs.spans`)."""

import numpy as np
import pytest

from repro.core.api import HZCCL
from repro.obs.spans import Span, build_spans
from repro.runtime.trace import TraceLog


def _manual_log() -> TraceLog:
    """collective > phase > one round with three charges."""
    log = TraceLog()
    log.begin_span("collective", "allreduce", 0.0)
    log.begin_span("phase", "exchange", 0.0)
    log.record_compute(0, "CPR", 0.5)
    log.record_compute(1, "CPR", 0.3)
    log.record_comm(0, 0.2, 100)
    log.record_round(0.7, comm=0.2)
    log.end_span("phase", "exchange", 0.7)
    log.end_span("collective", "allreduce", 0.7)
    return log


class TestManualHierarchy:
    def test_nesting(self):
        root = build_spans(_manual_log())
        assert root.kind == "trace"
        (collective,) = root.children
        assert (collective.kind, collective.name) == ("collective", "allreduce")
        (phase,) = collective.children
        assert (phase.kind, phase.name) == ("phase", "exchange")
        (rnd,) = phase.children
        assert rnd.kind == "round" and rnd.name == "round 0"
        assert rnd.duration == pytest.approx(0.7)
        assert len(rnd.children) == 3

    def test_per_rank_cursors_are_back_to_back(self):
        root = build_spans(_manual_log())
        rnd = root.children[0].children[0].children[0]
        rank0 = [c for c in rnd.children if c.rank == 0]
        assert [c.kind for c in rank0] == ["compute", "comm"]
        # rank 0's comm starts where its compute ends; rank 1 starts fresh
        assert rank0[1].start == pytest.approx(rank0[0].end)
        (rank1,) = [c for c in rnd.children if c.rank == 1]
        assert rank1.start == pytest.approx(rnd.start)

    def test_walk_visits_every_node(self):
        root = build_spans(_manual_log())
        kinds = [s.kind for s in root.walk()]
        assert kinds == ["trace", "collective", "phase", "round",
                         "compute", "compute", "comm"]

    def test_duration_property(self):
        span = Span("round", "round 0", 1.0, 3.5)
        assert span.duration == pytest.approx(2.5)


class TestFaultLeaves:
    def test_timed_fault_becomes_wait(self):
        log = TraceLog()
        log.record_fault(1, "TIMEOUT", seconds=0.4)
        log.record_round(0.4, comm=0.0)
        rnd = build_spans(log).children[0]
        (leaf,) = rnd.children
        assert leaf.kind == "wait" and leaf.name == "TIMEOUT"
        assert leaf.duration == pytest.approx(0.4)

    def test_zero_second_fault_is_marker(self):
        log = TraceLog()
        log.record_fault(2, "DROP", seconds=0.0)
        log.record_round(0.1, comm=0.1)
        (leaf,) = build_spans(log).children[0].children
        assert leaf.kind == "fault" and leaf.duration == 0.0


class TestRobustness:
    def test_open_round_is_preserved(self):
        log = TraceLog()
        log.record_compute(0, "CPR", 0.2)
        log.record_round(0.2, comm=0.0)
        log.record_compute(0, "DPR", 0.9)  # round 1 never closed
        root = build_spans(log)
        names = [c.name for c in root.children]
        assert names == ["round 0", "round 1 (open)"]
        open_round = root.children[1]
        assert open_round.duration == 0.0
        assert open_round.children[0].kind == "compute"

    def test_unmatched_begin_closed_at_final_time(self):
        log = TraceLog()
        log.begin_span("collective", "crashed", 0.0)
        log.record_compute(0, "CPR", 0.3)
        log.record_round(0.3, comm=0.0)
        root = build_spans(log)
        (collective,) = root.children
        assert collective.end == pytest.approx(0.3)

    def test_unmatched_end_is_ignored(self):
        log = TraceLog()
        log.end_span("phase", "never-opened", 0.0)
        log.record_round(0.1, comm=0.0)
        root = build_spans(log)
        assert [c.kind for c in root.children] == ["round"]

    def test_empty_log(self):
        root = build_spans(TraceLog())
        assert root.children == [] and root.duration == 0.0


class TestTracedRun:
    @pytest.fixture(scope="class")
    def trace(self):
        rng = np.random.default_rng(7)
        data = [
            np.cumsum(rng.standard_normal(2048)).astype(np.float32)
            for _ in range(4)
        ]
        return HZCCL(trace=True).allreduce(data).trace

    def test_full_hierarchy_present(self, trace):
        root = build_spans(trace)
        kinds = {s.kind for s in root.walk()}
        assert {"trace", "collective", "phase", "round", "compute",
                "comm"} <= kinds

    def test_collective_and_phase_names(self, trace):
        root = build_spans(trace)
        (collective,) = root.children
        assert collective.name == "hzccl_allreduce"
        phase_names = [s.name for s in root.walk() if s.kind == "phase"]
        assert {"compress", "exchange", "decompress"} <= set(phase_names)

    def test_round_spans_tile_virtual_time(self, trace):
        root = build_spans(trace)
        rounds = sorted(
            (s for s in root.walk() if s.kind == "round"),
            key=lambda s: s.start,
        )
        assert len(rounds) == trace.n_rounds
        total = sum(s.duration for s in trace.round_summaries())
        assert root.end == pytest.approx(total)
        for a, b in zip(rounds, rounds[1:]):
            assert b.start == pytest.approx(a.end)

    def test_charges_stay_inside_ranks(self, trace):
        root = build_spans(trace)
        n_ranks = 4
        for s in root.walk():
            if s.kind in ("compute", "comm", "wait"):
                assert 0 <= s.rank < n_ranks
