"""Tests for the image-stacking application (§IV-E)."""

import numpy as np
import pytest

from repro.apps.image_stacking import make_exposures, make_scene, stack_images
from repro.core.config import CollectiveConfig

SHAPE = (64, 64)


@pytest.fixture()
def config(fast_network):
    return CollectiveConfig(error_bound=1e-4, network=fast_network)


@pytest.fixture()
def exposures():
    _, exp = make_exposures(6, shape=SHAPE, seed=11)
    return exp


class TestSceneGeneration:
    def test_scene_shape_and_dtype(self):
        scene = make_scene(SHAPE, seed=1)
        assert scene.shape == SHAPE
        assert scene.dtype == np.float32

    def test_scene_deterministic(self):
        np.testing.assert_array_equal(make_scene(SHAPE, seed=2), make_scene(SHAPE, seed=2))

    def test_scene_nonnegative_background(self):
        assert make_scene(SHAPE, seed=1).min() > 0

    def test_exposures_are_noisy_scene(self):
        scene, exp = make_exposures(3, shape=SHAPE, noise_sigma=1.0, seed=4)
        assert len(exp) == 3
        for e in exp:
            resid = e - scene
            assert 0.5 < resid.std() < 2.0

    def test_exposures_independent(self):
        _, exp = make_exposures(2, shape=SHAPE, seed=4)
        assert not np.array_equal(exp[0], exp[1])


class TestStacking:
    def test_stacking_reduces_noise(self, exposures):
        scene, exp = make_exposures(8, shape=SHAPE, noise_sigma=4.0, seed=11)
        stacked = stack_images(exp, "mpi").stacked
        single_err = np.abs(exp[0] - scene).std()
        stacked_err = np.abs(stacked - scene).std()
        assert stacked_err < single_err / 2  # ~1/sqrt(8)

    @pytest.mark.parametrize("method", ["mpi", "ccoll", "hzccl"])
    def test_all_methods_run(self, exposures, config, method):
        res = stack_images(exposures, method, config)
        assert res.stacked.shape == SHAPE
        assert res.method == method
        assert res.total_time > 0

    def test_hzccl_accuracy_vs_mpi(self, exposures, config):
        ref = stack_images(exposures, "mpi", config)
        hz = stack_images(exposures, "hzccl", config, reference=ref.stacked)
        # paper: PSNR 62 dB at eb 1e-4 on real data; synthetic scene with
        # the same bound should clear 60 dB comfortably
        assert hz.psnr > 60
        assert hz.nrmse < 1e-2

    def test_quality_metrics_absent_without_reference(self, exposures, config):
        res = stack_images(exposures, "hzccl", config)
        assert res.psnr == float("inf")
        assert res.nrmse == 0.0

    def test_compressed_methods_send_fewer_bytes(self, exposures, fast_network):
        # The paper's 1e-4 bound applies to O(1)-range fields; our scene
        # spans O(100), so the equivalent bound is 1e-2 — tight enough for
        # 60+ dB stacks, loose enough that compression actually shrinks the
        # photon noise instead of encoding it losslessly.
        config = CollectiveConfig(error_bound=1e-2, network=fast_network)
        mpi = stack_images(exposures, "mpi", config)
        hz = stack_images(exposures, "hzccl", config)
        assert hz.bytes_on_wire < mpi.bytes_on_wire

    def test_breakdown_buckets(self, exposures, config):
        hz = stack_images(exposures, "hzccl", config)
        assert hz.breakdown.buckets["HPR"] > 0
        cc = stack_images(exposures, "ccoll", config)
        assert cc.breakdown.buckets["HPR"] == 0

    def test_rejects_unknown_method(self, exposures):
        with pytest.raises(ValueError, match="method"):
            stack_images(exposures, "gossip")

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="exposure"):
            stack_images([])
