"""Unit tests for the quality metrics."""

import numpy as np
import pytest

from repro.compression.metrics import (
    QualityReport,
    check_error_bound,
    error_std,
    evaluate_quality,
    max_abs_error,
    max_rel_error,
    nrmse,
    psnr,
)


class TestNrmse:
    def test_identical_is_zero(self):
        a = np.linspace(0, 1, 100)
        assert nrmse(a, a) == 0.0

    def test_known_value(self):
        a = np.array([0.0, 1.0])
        b = np.array([0.1, 1.0])
        # rmse = 0.1/sqrt(2), range = 1
        assert nrmse(a, b) == pytest.approx(0.1 / np.sqrt(2))

    def test_range_normalisation(self):
        a = np.array([0.0, 100.0])
        b = np.array([1.0, 100.0])
        assert nrmse(a, b) == pytest.approx(0.01 / np.sqrt(2))

    def test_constant_original_zero_error(self):
        a = np.full(5, 2.0)
        assert nrmse(a, a.copy()) == 0.0

    def test_constant_original_nonzero_error(self):
        assert nrmse(np.full(5, 2.0), np.full(5, 3.0)) == float("inf")

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            nrmse(np.zeros(3), np.zeros(4))


class TestPsnr:
    def test_identical_is_inf(self):
        a = np.linspace(0, 1, 10)
        assert psnr(a, a) == float("inf")

    def test_inverse_of_nrmse(self):
        a = np.linspace(0, 1, 100)
        b = a + 1e-3
        assert psnr(a, b) == pytest.approx(-20 * np.log10(nrmse(a, b)))

    def test_better_reconstruction_higher_psnr(self):
        a = np.linspace(0, 1, 100)
        assert psnr(a, a + 1e-4) > psnr(a, a + 1e-2)


class TestMaxErrors:
    def test_max_abs(self):
        assert max_abs_error(np.array([0.0, 1.0]), np.array([0.5, 1.0])) == 0.5

    def test_max_rel_uses_range(self):
        a = np.array([0.0, 10.0])
        assert max_rel_error(a, np.array([1.0, 10.0])) == pytest.approx(0.1)

    def test_error_std_of_uniform_error_is_zero(self):
        a = np.linspace(0, 1, 50)
        assert error_std(a, a + 0.01) == pytest.approx(0.0, abs=1e-12)


class TestCheckErrorBound:
    def test_accepts_within_bound(self):
        a = np.linspace(0, 1, 100).astype(np.float32)
        assert check_error_bound(a, a + 5e-4, 1e-3)

    def test_rejects_violation(self):
        a = np.linspace(0, 1, 100).astype(np.float32)
        b = a.copy()
        b[3] += 0.1
        assert not check_error_bound(a, b, 1e-3)

    def test_allows_one_ulp_slack(self):
        a = np.array([1000.0], dtype=np.float32)
        b = np.array([1000.0 + 1e-3], dtype=np.float32)
        assert check_error_bound(a, b, 1e-3)


class TestEvaluateQuality:
    def test_report_fields(self):
        a = np.linspace(0, 1, 1000).astype(np.float32)
        b = (a + 1e-4).astype(np.float32)
        report = evaluate_quality(a, b, compressed_nbytes=500)
        assert isinstance(report, QualityReport)
        assert report.compression_ratio == pytest.approx(1000 * 4 / 500)
        assert 0 < report.nrmse < 1e-3
        assert report.psnr > 60
        assert report.max_abs_error == pytest.approx(1e-4, rel=1e-2)
