"""Unit + property tests for quantisation and Lorenzo prediction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.compression.common import (
    dequantize,
    lorenzo_decode,
    lorenzo_encode,
    quantize,
    resolve_error_bound,
)


class TestResolveErrorBound:
    def test_absolute_passthrough(self):
        assert resolve_error_bound(np.ones(3), abs_eb=0.5) == 0.5

    def test_relative_uses_range(self):
        data = np.array([0.0, 10.0], dtype=np.float32)
        assert resolve_error_bound(data, rel_eb=1e-2) == pytest.approx(0.1)

    def test_requires_exactly_one(self):
        with pytest.raises(ValueError, match="exactly one"):
            resolve_error_bound(np.ones(3))
        with pytest.raises(ValueError, match="exactly one"):
            resolve_error_bound(np.ones(3), abs_eb=0.1, rel_eb=0.1)

    def test_constant_field_relative(self):
        eb = resolve_error_bound(np.full(10, 3.0, dtype=np.float32), rel_eb=1e-3)
        assert eb > 0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            resolve_error_bound(np.ones(3), abs_eb=0.0)


class TestQuantize:
    def test_error_bounded(self):
        data = np.linspace(-5, 5, 1000).astype(np.float32)
        eb = 1e-3
        rec = dequantize(quantize(data, eb), eb)
        assert np.abs(rec - data).max() <= eb * 1.0001

    def test_zero_maps_to_zero(self):
        assert quantize(np.zeros(5, dtype=np.float32), 1e-4).sum() == 0

    def test_int32_fast_path(self):
        codes = quantize(np.linspace(0, 1, 100).astype(np.float32), 1e-3)
        assert codes.dtype == np.int32

    def test_int64_fallback(self):
        data = np.linspace(0, 1e6, 100).astype(np.float32)
        codes = quantize(data, 1e-7)
        assert codes.dtype == np.int64

    def test_overflow_raises(self):
        with pytest.raises(OverflowError):
            quantize(np.array([1e30], dtype=np.float32), 1e-9)

    def test_rounding_is_nearest(self):
        # 0.9·(2eb) rounds to 1, 0.4·(2eb) rounds to 0
        eb = 0.5
        codes = quantize(np.array([0.9, 0.4], dtype=np.float32), eb)
        np.testing.assert_array_equal(codes, [1, 0])

    @given(
        data=arrays(
            np.float32,
            st.integers(1, 300),
            elements=st.floats(-1e4, 1e4, width=32),
        ),
        eb=st.floats(1e-4, 1.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_error_bound_property(self, data, eb):
        rec = dequantize(quantize(data, eb), eb)
        tol = eb + float(np.spacing(np.float32(np.abs(rec).max() if rec.size else 0)))
        assert np.abs(rec - data).max() <= tol


class TestLorenzo:
    def test_roundtrip_single_threadblock(self):
        codes = np.array([5, 7, 7, 2, -3], dtype=np.int64)
        deltas, outliers, bounds = lorenzo_encode(codes, 1)
        assert outliers[0] == 5
        assert deltas[0] == 0
        np.testing.assert_array_equal(lorenzo_decode(deltas, outliers, bounds), codes)

    def test_roundtrip_multi_threadblock(self):
        rng = np.random.default_rng(3)
        codes = rng.integers(-1000, 1000, 101).astype(np.int64)
        deltas, outliers, bounds = lorenzo_encode(codes, 7)
        np.testing.assert_array_equal(lorenzo_decode(deltas, outliers, bounds), codes)

    def test_threadblock_starts_are_zero_delta(self):
        codes = np.arange(20, dtype=np.int64) * 3
        deltas, outliers, bounds = lorenzo_encode(codes, 4)
        for start in bounds[:-1]:
            assert deltas[start] == 0

    def test_outliers_are_first_codes(self):
        codes = np.arange(100, dtype=np.int64)
        _, outliers, bounds = lorenzo_encode(codes, 5)
        np.testing.assert_array_equal(outliers, codes[bounds[:-1]])

    def test_empty_threadblocks(self):
        codes = np.array([9, 11], dtype=np.int64)
        deltas, outliers, bounds = lorenzo_encode(codes, 6)
        np.testing.assert_array_equal(lorenzo_decode(deltas, outliers, bounds), codes)

    def test_preserves_int32_dtype(self):
        codes = np.array([1, 2, 3], dtype=np.int32)
        deltas, _, _ = lorenzo_encode(codes, 1)
        assert deltas.dtype == np.int32

    def test_linearity(self):
        """The property the homomorphic engine relies on."""
        rng = np.random.default_rng(4)
        a = rng.integers(-100, 100, 50).astype(np.int64)
        b = rng.integers(-100, 100, 50).astype(np.int64)
        da, oa, bounds = lorenzo_encode(a, 4)
        db, ob, _ = lorenzo_encode(b, 4)
        dsum, osum, _ = lorenzo_encode(a + b, 4)
        np.testing.assert_array_equal(da + db, dsum)
        np.testing.assert_array_equal(oa + ob, osum)

    @given(
        codes=arrays(np.int64, st.integers(1, 400), elements=st.integers(-(2**40), 2**40)),
        n_tb=st.integers(1, 40),
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, codes, n_tb):
        deltas, outliers, bounds = lorenzo_encode(codes, n_tb)
        np.testing.assert_array_equal(lorenzo_decode(deltas, outliers, bounds), codes)
