"""Unit + property tests for the fZ-light compressor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.compression import check_error_bound
from repro.compression.fzlight import FZLight, compress, decompress, resolve_workers


class TestRoundTrip:
    @pytest.mark.parametrize("n", [1, 31, 32, 33, 1000, 100_003])
    def test_sizes(self, compressor, n):
        data = np.sin(np.arange(n, dtype=np.float32) * 0.01)
        field = compressor.compress(data, abs_eb=1e-4)
        out = compressor.decompress(field)
        assert out.shape == data.shape
        assert out.dtype == np.float32
        assert check_error_bound(data, out, 1e-4)

    @pytest.mark.parametrize("eb", [1e-1, 1e-2, 1e-3, 1e-4, 1e-6])
    def test_error_bounds(self, compressor, smooth_data, eb):
        field = compressor.compress(smooth_data, abs_eb=eb)
        assert check_error_bound(smooth_data, compressor.decompress(field), eb)

    def test_relative_bound(self, compressor, smooth_data):
        field = compressor.compress(smooth_data, rel_eb=1e-3)
        expected = 1e-3 * (smooth_data.max() - smooth_data.min())
        assert field.error_bound == pytest.approx(expected)

    def test_rough_data(self, compressor, rough_data):
        field = compressor.compress(rough_data, abs_eb=1e-3)
        assert check_error_bound(rough_data, compressor.decompress(field), 1e-3)

    def test_sparse_data_high_ratio(self, compressor, sparse_data):
        field = compressor.compress(sparse_data, abs_eb=1e-4)
        assert check_error_bound(sparse_data, compressor.decompress(field), 1e-4)
        assert field.compression_ratio > 20  # mostly constant blocks

    def test_exact_zeros_reconstruct_near_zero(self, compressor, sparse_data):
        field = compressor.compress(sparse_data, abs_eb=1e-4)
        out = compressor.decompress(field)
        zeros = sparse_data == 0
        assert np.abs(out[zeros]).max() <= 1e-4

    def test_constant_field(self, compressor):
        data = np.full(10_000, 3.25, dtype=np.float32)
        field = compressor.compress(data, abs_eb=1e-4)
        assert field.compression_ratio > 50
        assert check_error_bound(data, compressor.decompress(field), 1e-4)

    def test_multidimensional_input_flattened(self, compressor):
        data = np.random.default_rng(0).normal(0, 1, (50, 40)).astype(np.float32)
        field = compressor.compress(data, abs_eb=1e-3)
        out = compressor.decompress(field)
        assert out.shape == (2000,)
        assert check_error_bound(data.ravel(), out, 1e-3)


class TestModes:
    def test_parallel_matches_serial(self, smooth_data):
        serial = FZLight().compress(smooth_data, abs_eb=1e-4)
        parallel = FZLight(parallel=True).compress(smooth_data, abs_eb=1e-4)
        np.testing.assert_array_equal(serial.code_lengths, parallel.code_lengths)
        np.testing.assert_array_equal(serial.payload, parallel.payload)
        np.testing.assert_array_equal(serial.outliers, parallel.outliers)

    def test_parallel_decompress_matches(self, smooth_data):
        field = FZLight().compress(smooth_data, abs_eb=1e-4)
        np.testing.assert_array_equal(
            FZLight(parallel=True).decompress(field), FZLight().decompress(field)
        )

    def test_deterministic(self, smooth_data, compressor):
        a = compressor.compress(smooth_data, abs_eb=1e-4)
        b = compressor.compress(smooth_data, abs_eb=1e-4)
        assert a.to_bytes() == b.to_bytes()

    @pytest.mark.parametrize("n_tb", [1, 2, 5, 36, 100])
    def test_threadblock_counts(self, smooth_data, n_tb):
        comp = FZLight(n_threadblocks=n_tb)
        field = comp.compress(smooth_data, abs_eb=1e-4)
        assert field.outliers.size == n_tb
        assert check_error_bound(smooth_data, comp.decompress(field), 1e-4)

    def test_small_block_size(self, smooth_data):
        comp = FZLight(block_size=8)
        field = comp.compress(smooth_data, abs_eb=1e-4)
        assert check_error_bound(smooth_data, comp.decompress(field), 1e-4)

    def test_rejects_bad_block_size(self):
        with pytest.raises(ValueError, match="multiple of 8"):
            FZLight(block_size=12)

    def test_rejects_bad_threadblocks(self):
        with pytest.raises(ValueError):
            FZLight(n_threadblocks=0)


class TestWorkerResolution:
    def test_derives_from_cpu_count(self, monkeypatch):
        """The pool width tracks the host, not a silent hard cap of 16."""
        monkeypatch.setattr("repro.compression.fzlight.os.cpu_count", lambda: 36)
        assert resolve_workers(100) == 36
        monkeypatch.setattr("repro.compression.fzlight.os.cpu_count", lambda: None)
        assert resolve_workers(100) == 1

    def test_capped_by_task_count(self, monkeypatch):
        monkeypatch.setattr("repro.compression.fzlight.os.cpu_count", lambda: 64)
        assert resolve_workers(5) == 5
        assert resolve_workers(0) == 1  # executor needs at least one worker

    def test_explicit_cap_wins(self):
        assert resolve_workers(100, max_workers=36) == 36
        assert resolve_workers(4, max_workers=36) == 4

    def test_rejects_bad_cap(self):
        with pytest.raises(ValueError, match="max_workers"):
            resolve_workers(10, max_workers=0)
        with pytest.raises(ValueError, match="max_workers"):
            FZLight(max_workers=-2)

    def test_parallel_with_explicit_workers_matches_serial(self, smooth_data):
        serial = FZLight().compress(smooth_data, abs_eb=1e-4)
        wide = FZLight(parallel=True, max_workers=3)
        parallel = wide.compress(smooth_data, abs_eb=1e-4)
        assert serial.to_bytes() == parallel.to_bytes()
        np.testing.assert_array_equal(
            wide.decompress(parallel), FZLight().decompress(serial)
        )


class TestCompressionQuality:
    def test_smoother_data_compresses_better(self, compressor, rng):
        rough = rng.normal(0, 1, 50_000).astype(np.float32)
        smooth = np.cumsum(rng.normal(0, 0.001, 50_000)).astype(np.float32)
        r_rough = compressor.compress(rough, rel_eb=1e-3).compression_ratio
        r_smooth = compressor.compress(smooth, rel_eb=1e-3).compression_ratio
        assert r_smooth > r_rough

    def test_looser_bound_compresses_better(self, compressor, smooth_data):
        loose = compressor.compress(smooth_data, rel_eb=1e-2).compression_ratio
        tight = compressor.compress(smooth_data, rel_eb=1e-4).compression_ratio
        assert loose > tight

    def test_fewer_outliers_than_ompszp(self, compressor, ompszp, smooth_data):
        """fZ-light stores one outlier per thread-block, ompSZp one per block."""
        fz = compressor.compress(smooth_data, abs_eb=1e-4)
        omp = ompszp.compress(smooth_data, abs_eb=1e-4)
        assert fz.outliers.size < omp.outliers.size


class TestModuleFunctions:
    def test_compress_decompress_helpers(self, smooth_data):
        field = compress(smooth_data, abs_eb=1e-3)
        out = decompress(field)
        assert check_error_bound(smooth_data, out, 1e-3)

    def test_helper_respects_geometry(self, smooth_data):
        field = compress(smooth_data, abs_eb=1e-3, block_size=8, n_threadblocks=4)
        assert field.block_size == 8
        assert field.n_threadblocks == 4


class TestProperties:
    @given(
        data=arrays(
            np.float32,
            st.integers(1, 2000),
            elements=st.floats(-1e3, 1e3, width=32),
        ),
        eb=st.sampled_from([1e-1, 1e-2, 1e-3]),
        n_tb=st.sampled_from([1, 3, 36]),
    )
    @settings(max_examples=60, deadline=None)
    def test_error_bound_always_holds(self, data, eb, n_tb):
        comp = FZLight(n_threadblocks=n_tb)
        field = comp.compress(data, abs_eb=eb)
        assert check_error_bound(data, comp.decompress(field), eb)

    @given(
        data=arrays(
            np.float32, st.integers(1, 500), elements=st.floats(-10, 10, width=32)
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_idempotent_on_reconstruction(self, data):
        """Compressing the reconstruction reproduces it exactly (codes are
        already on the quantisation grid)."""
        comp = FZLight(n_threadblocks=3)
        eb = 1e-2
        rec1 = comp.decompress(comp.compress(data, abs_eb=eb))
        rec2 = comp.decompress(comp.compress(rec1, abs_eb=eb))
        np.testing.assert_allclose(rec1, rec2, atol=2e-7 * np.abs(rec1).max() + 1e-12)
