"""Tests for the N-dimensional Lorenzo compressor (2-D and 3-D)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.compression import FZLight, FZLightND, check_error_bound, from_bytes
from repro.compression.common import dequantize, quantize
from repro.compression.format import PREDICTOR_LORENZO_2D, PREDICTOR_LORENZO_3D
from repro.compression.fzlightnd import _forward_lorenzo, _inverse_lorenzo
from repro.homomorphic import HZDynamic


def smooth_volume(nz=20, ny=18, nx=16):
    zz, yy, xx = np.mgrid[0:nz, 0:ny, 0:nx].astype(np.float32)
    return np.sin(zz / 5.0) * np.cos(yy / 4.0) * np.sin(xx / 3.0) + 0.05 * zz / nz


class TestLorenzoOperators:
    @pytest.mark.parametrize("shape", [(5,), (4, 7), (3, 4, 5), (2, 3, 4)])
    def test_forward_inverse_identity(self, shape):
        rng = np.random.default_rng(1)
        q = rng.integers(-1000, 1000, shape).astype(np.int64)
        np.testing.assert_array_equal(_inverse_lorenzo(_forward_lorenzo(q)), q)

    def test_forward_is_linear(self):
        rng = np.random.default_rng(2)
        a = rng.integers(-50, 50, (4, 5, 6)).astype(np.int64)
        b = rng.integers(-50, 50, (4, 5, 6)).astype(np.int64)
        np.testing.assert_array_equal(
            _forward_lorenzo(a + b), _forward_lorenzo(a) + _forward_lorenzo(b)
        )

    def test_constant_volume_single_nonzero_delta(self):
        q = np.full((4, 4, 4), 7, dtype=np.int64)
        d = _forward_lorenzo(q)
        assert d[0, 0, 0] == 7
        assert np.count_nonzero(d) == 1


class TestRoundTrip3D:
    @pytest.mark.parametrize(
        "shape", [(1, 1, 1), (1, 5, 7), (8, 1, 8), (20, 18, 16)]
    )
    def test_shapes(self, shape):
        rng = np.random.default_rng(0)
        data = rng.normal(0, 1, shape).astype(np.float32)
        comp = FZLightND()
        out = comp.decompress(comp.compress(data, abs_eb=1e-3))
        assert out.shape == shape
        assert check_error_bound(data.ravel(), out.ravel(), 1e-3)

    @pytest.mark.parametrize("eb", [1e-1, 1e-3, 1e-5])
    def test_error_bounds(self, eb):
        data = smooth_volume()
        comp = FZLightND()
        out = comp.decompress(comp.compress(data, abs_eb=eb))
        assert check_error_bound(data.ravel(), out.ravel(), eb)

    def test_metadata(self):
        field = FZLightND().compress(smooth_volume(10, 12, 14), abs_eb=1e-3)
        assert field.predictor == PREDICTOR_LORENZO_3D
        assert (field.rows, field.cols) == (10, 12)

    def test_wire_roundtrip(self):
        comp = FZLightND()
        field = comp.compress(smooth_volume(), abs_eb=1e-4)
        again = from_bytes(field.to_bytes())
        assert (again.rows, again.cols) == (field.rows, field.cols)
        np.testing.assert_array_equal(comp.decompress(again), comp.decompress(field))

    def test_2d_mode_matches_predictor(self):
        img = smooth_volume()[0]
        field = FZLightND().compress(img, abs_eb=1e-3)
        assert field.predictor == PREDICTOR_LORENZO_2D
        assert field.cols == 0

    def test_rejects_1d_and_4d(self):
        comp = FZLightND()
        with pytest.raises(ValueError, match="2-D and 3-D"):
            comp.compress(np.ones(10, dtype=np.float32), abs_eb=1e-3)
        with pytest.raises(ValueError, match="2-D and 3-D"):
            comp.compress(np.ones((2, 2, 2, 2), dtype=np.float32), abs_eb=1e-3)

    def test_decompress_rejects_1d_stream(self):
        field = FZLight().compress(np.ones(64, dtype=np.float32), abs_eb=1e-3)
        with pytest.raises(ValueError, match="N-D"):
            FZLightND().decompress(field)


class TestRatio3D:
    def test_beats_1d_on_smooth_volume(self):
        data = smooth_volume(48, 48, 48)
        r3d = FZLightND().compress(data, abs_eb=1e-4).compression_ratio
        r1d = FZLight().compress(data.ravel(), abs_eb=1e-4).compression_ratio
        assert r3d > 1.2 * r1d

    def test_dataset_volume(self):
        """On the synthetic NYX volume the 3-D predictor must not lose."""
        from repro.compression import resolve_error_bound
        from repro.datasets import generate_field

        data = generate_field("hurricane", 0, scale=0.005, seed=1)
        eb = resolve_error_bound(data, rel_eb=1e-3)
        r3d = FZLightND().compress(data, abs_eb=eb).compression_ratio
        r1d = FZLight().compress(data.ravel(), abs_eb=eb).compression_ratio
        assert r3d > 0.8 * r1d


class TestHomomorphic3D:
    def test_sum_matches_integer_oracle(self):
        rng = np.random.default_rng(3)
        a = smooth_volume()
        b = (a * 0.4 + rng.normal(0, 0.02, a.shape)).astype(np.float32)
        eb = 1e-4
        comp = FZLightND()
        total = HZDynamic().add(comp.compress(a, abs_eb=eb), comp.compress(b, abs_eb=eb))
        oracle = dequantize(
            quantize(a.ravel(), eb).astype(np.int64)
            + quantize(b.ravel(), eb).astype(np.int64),
            eb,
        ).reshape(a.shape)
        np.testing.assert_array_equal(comp.decompress(total), oracle)

    def test_mixed_dims_rejected(self):
        comp = FZLightND()
        a = comp.compress(smooth_volume(8, 10, 12), abs_eb=1e-3)
        b = comp.compress(smooth_volume(10, 8, 12), abs_eb=1e-3)
        with pytest.raises(ValueError, match="compatible"):
            HZDynamic().add(a, b)

    def test_3d_vs_2d_streams_rejected(self):
        nd = FZLightND()
        vol = smooth_volume(4, 8, 8)
        a = nd.compress(vol, abs_eb=1e-3)  # 3-D, n = 256
        b = nd.compress(vol.reshape(16, 16), abs_eb=1e-3)  # 2-D, n = 256
        with pytest.raises(ValueError, match="compatible"):
            HZDynamic().add(a, b)


class TestProperties:
    @given(
        data=arrays(
            np.float32,
            st.tuples(st.integers(1, 8), st.integers(1, 8), st.integers(1, 8)),
            elements=st.floats(-50, 50, width=32),
        ),
        eb=st.sampled_from([1e-1, 1e-2]),
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, data, eb):
        comp = FZLightND(block_size=8)
        out = comp.decompress(comp.compress(data, abs_eb=eb))
        assert check_error_bound(data.ravel(), out.ravel(), eb)
