"""Tests for random access and compressed concatenation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import FZLight, FZLight2D
from repro.compression.access import concat_fields, decompress_range


@pytest.fixture(scope="module")
def field_and_data():
    rng = np.random.default_rng(4)
    data = np.cumsum(rng.normal(0, 0.02, 100_003)).astype(np.float32)
    comp = FZLight(n_threadblocks=9)
    return comp.compress(data, abs_eb=1e-4), comp.decompress(
        comp.compress(data, abs_eb=1e-4)
    )


class TestDecompressRange:
    @pytest.mark.parametrize(
        "start,stop",
        [(0, 100), (0, 100_003), (50_000, 50_001), (99_000, 100_003), (11_111, 44_444)],
    )
    def test_matches_full_decompression(self, field_and_data, start, stop):
        field, full = field_and_data
        part = decompress_range(field, start, stop)
        np.testing.assert_array_equal(part, full[start:stop])

    def test_single_element(self, field_and_data):
        field, full = field_and_data
        np.testing.assert_array_equal(
            decompress_range(field, 12_345, 12_346), full[12_345:12_346]
        )

    def test_out_of_bounds(self, field_and_data):
        field, _ = field_and_data
        with pytest.raises(IndexError):
            decompress_range(field, -1, 10)
        with pytest.raises(IndexError):
            decompress_range(field, 0, field.n + 1)
        with pytest.raises(IndexError):
            decompress_range(field, 10, 10)

    def test_rejects_2d_stream(self):
        img = np.outer(
            np.sin(np.arange(32, dtype=np.float32)),
            np.cos(np.arange(32, dtype=np.float32)),
        )
        field = FZLight2D().compress(img, abs_eb=1e-3)
        with pytest.raises(ValueError, match="1-D"):
            decompress_range(field, 0, 10)

    @given(start=st.integers(0, 99_000), length=st.integers(1, 900))
    @settings(max_examples=40, deadline=None)
    def test_range_property(self, field_and_data, start, length):
        field, full = field_and_data
        stop = min(start + length, field.n)
        np.testing.assert_array_equal(
            decompress_range(field, start, stop), full[start:stop]
        )


class TestConcatFields:
    def _aligned_pieces(self, rng, n_pieces=3, piece=32 * 36 * 4):
        comp = FZLight(n_threadblocks=36)
        arrays = [
            np.cumsum(rng.normal(0, 0.02, piece)).astype(np.float32)
            for _ in range(n_pieces)
        ]
        fields = [comp.compress(a, abs_eb=1e-4) for a in arrays]
        return comp, arrays, fields

    def test_concat_equals_piecewise_decompression(self, rng):
        comp, arrays, fields = self._aligned_pieces(rng)
        joined = concat_fields(fields)
        expected = np.concatenate([comp.decompress(f) for f in fields])
        decoder = FZLight(n_threadblocks=joined.n_threadblocks)
        np.testing.assert_array_equal(decoder.decompress(joined), expected)

    def test_concat_metadata(self, rng):
        _, _, fields = self._aligned_pieces(rng)
        joined = concat_fields(fields)
        assert joined.n == sum(f.n for f in fields)
        assert joined.n_threadblocks == sum(f.n_threadblocks for f in fields)
        joined.validate()

    def test_single_field_passthrough(self, rng):
        comp, _, fields = self._aligned_pieces(rng, n_pieces=1)
        joined = concat_fields(fields[:1])
        np.testing.assert_array_equal(
            FZLight(n_threadblocks=joined.n_threadblocks).decompress(joined),
            comp.decompress(fields[0]),
        )

    def test_mismatched_eb_rejected(self, rng):
        comp = FZLight(n_threadblocks=2)
        data = np.ones(256, dtype=np.float32)
        a = comp.compress(data, abs_eb=1e-4)
        b = comp.compress(data, abs_eb=1e-3)
        with pytest.raises(ValueError, match="error bounds"):
            concat_fields([a, b])

    def test_unaligned_pieces_rejected(self, rng):
        """Pieces whose geometry cannot chain uniformly are refused rather
        than silently mis-decoded."""
        comp = FZLight(n_threadblocks=3)
        a = comp.compress(np.ones(1000, dtype=np.float32), abs_eb=1e-4)
        b = comp.compress(np.ones(77, dtype=np.float32), abs_eb=1e-4)
        with pytest.raises(ValueError, match="geometry"):
            concat_fields([a, b])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            concat_fields([])
