"""Robustness of the wire-format parser against corrupted streams.

A collective that receives a damaged buffer must fail with a clean
``ValueError`` — never a segfault-style index explosion, never silently
wrong data passed to the homomorphic engine.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import (
    FZLight,
    FZLight2D,
    FZLightND,
    OmpSZp,
    from_bytes,
    ompszp_from_bytes,
)


@pytest.fixture(scope="module")
def stream() -> bytes:
    data = np.sin(np.linspace(0, 20, 5000)).astype(np.float32)
    return FZLight(n_threadblocks=4).compress(data, abs_eb=1e-4).to_bytes()


class TestTruncation:
    @pytest.mark.parametrize("cut", [0, 1, 5, 20, 41, 100])
    def test_truncated_prefixes_raise_valueerror(self, stream, cut):
        with pytest.raises(ValueError):
            from_bytes(stream[:cut])

    def test_one_byte_short(self, stream):
        with pytest.raises(ValueError):
            from_bytes(stream[:-1])

    def test_one_byte_long(self, stream):
        with pytest.raises(ValueError):
            from_bytes(stream + b"\x00")


class TestBitCorruption:
    @given(pos=st.integers(0, 60), value=st.integers(0, 255))
    @settings(max_examples=120, deadline=None)
    def test_header_corruption_never_escapes_valueerror(self, stream, pos, value):
        """Flipping any header byte either still parses (benign — e.g. the
        error bound changed) or raises ValueError; nothing else."""
        blob = bytearray(stream)
        blob[pos] = value
        try:
            field = from_bytes(bytes(blob))
        except (ValueError, OverflowError):
            return
        # if it parsed, the structural invariants must hold
        field.validate()

    @given(pos=st.integers(0, 2**16), value=st.integers(0, 255))
    @settings(max_examples=120, deadline=None)
    def test_body_corruption_parses_or_valueerror(self, stream, pos, value):
        blob = bytearray(stream)
        blob[pos % len(blob)] = value
        try:
            field = from_bytes(bytes(blob))
        except (ValueError, OverflowError):
            return
        field.validate()
        # decoding a structurally valid but content-corrupted stream must
        # not crash either (garbage values are acceptable; crashes are not)
        FZLight(n_threadblocks=field.n_threadblocks).decompress(field)


def _fzlight_stream() -> bytes:
    data = np.sin(np.linspace(0, 20, 5000)).astype(np.float32)
    return FZLight(n_threadblocks=4).compress(data, abs_eb=1e-4).to_bytes()


def _fzlight2d_stream() -> bytes:
    yy, xx = np.mgrid[0:48, 0:64]
    img = (np.sin(yy / 9.0) * np.cos(xx / 7.0)).astype(np.float32)
    return FZLight2D().compress(img, abs_eb=1e-4).to_bytes()


def _fzlightnd_stream() -> bytes:
    zz, yy, xx = np.mgrid[0:12, 0:16, 0:20]
    vol = (np.sin(zz / 5.0) * np.cos(yy / 4.0) * np.sin(xx / 3.0)).astype(
        np.float32
    )
    return FZLightND().compress(vol, abs_eb=1e-4).to_bytes()


def _ompszp_stream() -> bytes:
    data = np.cos(np.linspace(0, 14, 4000)).astype(np.float32)
    return OmpSZp(n_threads=8).compress(data, abs_eb=1e-4).to_bytes()


# container name → (stream bytes, parser) — built once per module
_CONTAINERS = {
    "fzlight": (_fzlight_stream(), from_bytes),
    "fzlight2d": (_fzlight2d_stream(), from_bytes),
    "fzlightnd": (_fzlightnd_stream(), from_bytes),
    "ompszp": (_ompszp_stream(), ompszp_from_bytes),
}


class TestFullStreamFuzz:
    """Seeded bit-flip fuzz across the *whole* stream, every container.

    The checksum upgrade turns the earlier "parses-or-raises" contract
    into a strict one: any single-byte change anywhere in the stream —
    header, code lengths, outliers, payload — must raise ``ValueError``.
    """

    @pytest.mark.parametrize("container", sorted(_CONTAINERS))
    @given(pos=st.integers(0, 2**20), bit=st.integers(0, 7))
    @settings(max_examples=150, deadline=None)
    def test_any_single_bit_flip_raises(self, container, pos, bit):
        stream, parse = _CONTAINERS[container]
        blob = bytearray(stream)
        blob[pos % len(blob)] ^= 1 << bit  # XOR: the byte always changes
        with pytest.raises(ValueError):
            parse(bytes(blob))

    @pytest.mark.parametrize("container", sorted(_CONTAINERS))
    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=60, deadline=None)
    def test_seeded_multi_byte_fuzz_raises(self, container, seed):
        stream, parse = _CONTAINERS[container]
        rng = np.random.default_rng(seed)
        blob = bytearray(stream)
        n_flips = int(rng.integers(1, 9))
        changed = False
        for _ in range(n_flips):
            pos = int(rng.integers(0, len(blob)))
            value = int(rng.integers(0, 256))
            changed |= blob[pos] != value
            blob[pos] = value
        if not changed:  # rng happened to rewrite identical bytes
            return
        with pytest.raises(ValueError):
            parse(bytes(blob))

    @pytest.mark.parametrize("container", sorted(_CONTAINERS))
    def test_pristine_stream_roundtrips(self, container):
        stream, parse = _CONTAINERS[container]
        field = parse(stream)
        assert field.to_bytes() == stream

    @pytest.mark.parametrize("container", sorted(_CONTAINERS))
    @given(cut=st.integers(0, 2**20))
    @settings(max_examples=60, deadline=None)
    def test_truncation_raises_everywhere(self, container, cut):
        stream, parse = _CONTAINERS[container]
        with pytest.raises(ValueError):
            parse(stream[: cut % len(stream)])


class TestGarbage:
    @given(blob=st.binary(min_size=0, max_size=200))
    @settings(max_examples=80, deadline=None)
    def test_random_bytes_never_parse_silently_wrong(self, blob):
        try:
            field = from_bytes(blob)
        except (ValueError, OverflowError):
            return
        field.validate()
