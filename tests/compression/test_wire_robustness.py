"""Robustness of the wire-format parser against corrupted streams.

A collective that receives a damaged buffer must fail with a clean
``ValueError`` — never a segfault-style index explosion, never silently
wrong data passed to the homomorphic engine.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import FZLight, from_bytes


@pytest.fixture(scope="module")
def stream() -> bytes:
    data = np.sin(np.linspace(0, 20, 5000)).astype(np.float32)
    return FZLight(n_threadblocks=4).compress(data, abs_eb=1e-4).to_bytes()


class TestTruncation:
    @pytest.mark.parametrize("cut", [0, 1, 5, 20, 41, 100])
    def test_truncated_prefixes_raise_valueerror(self, stream, cut):
        with pytest.raises(ValueError):
            from_bytes(stream[:cut])

    def test_one_byte_short(self, stream):
        with pytest.raises(ValueError):
            from_bytes(stream[:-1])

    def test_one_byte_long(self, stream):
        with pytest.raises(ValueError):
            from_bytes(stream + b"\x00")


class TestBitCorruption:
    @given(pos=st.integers(0, 60), value=st.integers(0, 255))
    @settings(max_examples=120, deadline=None)
    def test_header_corruption_never_escapes_valueerror(self, stream, pos, value):
        """Flipping any header byte either still parses (benign — e.g. the
        error bound changed) or raises ValueError; nothing else."""
        blob = bytearray(stream)
        blob[pos] = value
        try:
            field = from_bytes(bytes(blob))
        except (ValueError, OverflowError):
            return
        # if it parsed, the structural invariants must hold
        field.validate()

    @given(pos=st.integers(0, 2**16), value=st.integers(0, 255))
    @settings(max_examples=120, deadline=None)
    def test_body_corruption_parses_or_valueerror(self, stream, pos, value):
        blob = bytearray(stream)
        blob[pos % len(blob)] = value
        try:
            field = from_bytes(bytes(blob))
        except (ValueError, OverflowError):
            return
        field.validate()
        # decoding a structurally valid but content-corrupted stream must
        # not crash either (garbage values are acceptable; crashes are not)
        FZLight(n_threadblocks=field.n_threadblocks).decompress(field)


class TestGarbage:
    @given(blob=st.binary(min_size=0, max_size=200))
    @settings(max_examples=80, deadline=None)
    def test_random_bytes_never_parse_silently_wrong(self, blob):
        try:
            field = from_bytes(blob)
        except (ValueError, OverflowError):
            return
        field.validate()
