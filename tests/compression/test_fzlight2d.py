"""Tests for the 2-D Lorenzo compressor extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.compression import FZLight, FZLight2D, check_error_bound, from_bytes
from repro.compression.common import dequantize, quantize
from repro.compression.format import PREDICTOR_LORENZO_2D
from repro.homomorphic import HZDynamic


def smooth_image(rows=120, cols=90):
    yy, xx = np.mgrid[0:rows, 0:cols].astype(np.float32)
    return np.sin(yy / 11.0) * np.cos(xx / 7.0) + 0.1 * (yy / rows)


class TestRoundTrip:
    @pytest.mark.parametrize("shape", [(1, 1), (1, 50), (50, 1), (7, 9), (120, 90)])
    def test_shapes(self, shape):
        rng = np.random.default_rng(0)
        data = rng.normal(0, 1, shape).astype(np.float32)
        comp = FZLight2D()
        field = comp.compress(data, abs_eb=1e-3)
        out = comp.decompress(field)
        assert out.shape == shape
        assert check_error_bound(data.ravel(), out.ravel(), 1e-3)

    @pytest.mark.parametrize("eb", [1e-1, 1e-3, 1e-5])
    def test_error_bounds(self, eb):
        data = smooth_image()
        comp = FZLight2D()
        out = comp.decompress(comp.compress(data, abs_eb=eb))
        assert check_error_bound(data.ravel(), out.ravel(), eb)

    def test_relative_bound(self):
        data = smooth_image()
        field = FZLight2D().compress(data, rel_eb=1e-3)
        expected = 1e-3 * float(data.max() - data.min())
        assert field.error_bound == pytest.approx(expected)

    def test_metadata(self):
        field = FZLight2D().compress(smooth_image(64, 48), abs_eb=1e-3)
        assert field.predictor == PREDICTOR_LORENZO_2D
        assert field.rows == 64
        assert field.n == 64 * 48

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            FZLight2D().compress(np.ones(100, dtype=np.float32), abs_eb=1e-3)

    def test_rejects_nan(self):
        data = smooth_image()
        data[3, 4] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            FZLight2D().compress(data, abs_eb=1e-3)

    def test_decompress_rejects_1d_stream(self):
        field = FZLight().compress(np.ones(100, dtype=np.float32), abs_eb=1e-3)
        with pytest.raises(ValueError, match="2-D"):
            FZLight2D().decompress(field)

    def test_wire_roundtrip(self):
        field = FZLight2D().compress(smooth_image(), abs_eb=1e-4)
        again = from_bytes(field.to_bytes())
        assert again.predictor == PREDICTOR_LORENZO_2D
        assert again.rows == field.rows
        np.testing.assert_array_equal(
            FZLight2D().decompress(again), FZLight2D().decompress(field)
        )


class TestRatioAdvantage:
    def test_beats_1d_on_smooth_2d_data(self):
        """The point of the extension: 2-D prediction exploits the second
        dimension's smoothness."""
        data = smooth_image(256, 256)
        r2d = FZLight2D().compress(data, abs_eb=1e-4).compression_ratio
        r1d = FZLight().compress(data.ravel(), abs_eb=1e-4).compression_ratio
        assert r2d > 1.3 * r1d

    def test_no_catastrophe_on_noise(self):
        """On white noise neither predictor helps; 2-D must stay in the
        same band as 1-D (prediction residuals grow by at most ~2 bits)."""
        rng = np.random.default_rng(1)
        data = rng.normal(0, 1, (128, 128)).astype(np.float32)
        r2d = FZLight2D().compress(data, abs_eb=1e-2).compression_ratio
        r1d = FZLight().compress(data.ravel(), abs_eb=1e-2).compression_ratio
        assert r2d > 0.6 * r1d


class TestHomomorphic2D:
    def test_sum_matches_integer_oracle(self):
        rng = np.random.default_rng(2)
        a = smooth_image()
        b = (a * 0.3 + rng.normal(0, 0.05, a.shape)).astype(np.float32)
        eb = 1e-4
        comp = FZLight2D()
        ca, cb = comp.compress(a, abs_eb=eb), comp.compress(b, abs_eb=eb)
        total = HZDynamic().add(ca, cb)
        oracle = dequantize(
            quantize(a.ravel(), eb).astype(np.int64)
            + quantize(b.ravel(), eb).astype(np.int64),
            eb,
        ).reshape(a.shape)
        np.testing.assert_array_equal(comp.decompress(total), oracle)

    def test_sum_preserves_2d_metadata(self):
        comp = FZLight2D()
        ca = comp.compress(smooth_image(), abs_eb=1e-4)
        total = HZDynamic().add(ca, ca)
        assert total.predictor == PREDICTOR_LORENZO_2D
        assert total.rows == ca.rows

    def test_mixing_predictors_rejected(self):
        data = smooth_image()
        c2d = FZLight2D().compress(data, abs_eb=1e-4)
        c1d = FZLight(n_threadblocks=1).compress(data.ravel(), abs_eb=1e-4)
        with pytest.raises(ValueError, match="compatible"):
            HZDynamic().add(c2d, c1d)

    def test_mixing_shapes_rejected(self):
        comp = FZLight2D()
        a = comp.compress(smooth_image(60, 80), abs_eb=1e-4)
        b = comp.compress(smooth_image(80, 60), abs_eb=1e-4)
        with pytest.raises(ValueError, match="compatible"):
            HZDynamic().add(a, b)

    def test_scale(self):
        comp = FZLight2D()
        a = smooth_image()
        ca = comp.compress(a, abs_eb=1e-4)
        doubled = HZDynamic().scale(ca, 2)
        oracle = dequantize(
            quantize(a.ravel(), 1e-4).astype(np.int64) * 2, 1e-4
        ).reshape(a.shape)
        np.testing.assert_array_equal(comp.decompress(doubled), oracle)


class TestProperties:
    @given(
        data=arrays(
            np.float32,
            st.tuples(st.integers(1, 24), st.integers(1, 24)),
            elements=st.floats(-100, 100, width=32),
        ),
        eb=st.sampled_from([1e-1, 1e-2, 1e-3]),
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, data, eb):
        comp = FZLight2D(block_size=8)
        out = comp.decompress(comp.compress(data, abs_eb=eb))
        assert check_error_bound(data.ravel(), out.ravel(), eb)
