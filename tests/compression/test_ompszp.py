"""Unit tests for the ompSZp baseline (cuSZp CPU port)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.compression import check_error_bound
from repro.compression.ompszp import ZERO_BLOCK_MARKER, OmpSZp


class TestRoundTrip:
    @pytest.mark.parametrize("n", [1, 31, 32, 33, 4096, 100_003])
    def test_sizes(self, ompszp, n):
        data = np.cos(np.arange(n, dtype=np.float32) * 0.02)
        field = ompszp.compress(data, abs_eb=1e-4)
        out = ompszp.decompress(field)
        assert out.shape == data.shape
        assert check_error_bound(data, out, 1e-4)

    @pytest.mark.parametrize("eb", [1e-1, 1e-3, 1e-5])
    def test_error_bounds(self, ompszp, smooth_data, eb):
        field = ompszp.compress(smooth_data, abs_eb=eb)
        assert check_error_bound(smooth_data, ompszp.decompress(field), eb)

    def test_rough_data(self, ompszp, rough_data):
        field = ompszp.compress(rough_data, abs_eb=1e-3)
        assert check_error_bound(rough_data, ompszp.decompress(field), 1e-3)

    def test_deterministic(self, ompszp, smooth_data):
        a = ompszp.compress(smooth_data, abs_eb=1e-4)
        b = ompszp.compress(smooth_data, abs_eb=1e-4)
        np.testing.assert_array_equal(a.payload, b.payload)


class TestZeroBlockSkip:
    def test_zero_blocks_marked(self, ompszp, sparse_data):
        field = ompszp.compress(sparse_data, abs_eb=1e-4)
        assert (field.code_lengths == ZERO_BLOCK_MARKER).any()

    def test_zero_blocks_reconstruct_exactly(self, ompszp, sparse_data):
        field = ompszp.compress(sparse_data, abs_eb=1e-4)
        out = ompszp.decompress(field)
        zeros = sparse_data == 0
        # skipped blocks come back as *exact* zeros, better than eb
        block_zeros = np.repeat(
            field.code_lengths == ZERO_BLOCK_MARKER, field.block_size
        )[: sparse_data.size]
        assert (out[block_zeros] == 0).all()
        assert np.abs(out[zeros]).max() <= 1e-4

    def test_all_zero_input(self, ompszp):
        data = np.zeros(10_000, dtype=np.float32)
        field = ompszp.compress(data, abs_eb=1e-4)
        assert (field.code_lengths == ZERO_BLOCK_MARKER).all()
        assert field.payload.size == 0
        np.testing.assert_array_equal(ompszp.decompress(field), data)

    def test_skip_saves_outlier_bytes(self, ompszp, rng):
        """A zero block costs 1 byte; a constant non-zero block costs 5."""
        zeros = np.zeros(32_000, dtype=np.float32)
        const = np.full(32_000, 7.0, dtype=np.float32)
        f_zero = ompszp.compress(zeros, abs_eb=1e-4)
        f_const = ompszp.compress(const, abs_eb=1e-4)
        assert f_zero.nbytes < f_const.nbytes


class TestLayout:
    def test_one_outlier_per_block(self, ompszp, smooth_data):
        field = ompszp.compress(smooth_data, abs_eb=1e-4)
        assert field.outliers.size == field.n_blocks

    def test_interleave_order_is_permutation(self, ompszp):
        order = ompszp._interleave_order(100)
        assert sorted(order.tolist()) == list(range(100))

    def test_interleave_thread_major(self):
        omp = OmpSZp(n_threads=4)
        order = omp._interleave_order(8)
        # thread 0 gets blocks 0,4; thread 1 gets 1,5; ...
        np.testing.assert_array_equal(order, [0, 4, 1, 5, 2, 6, 3, 7])

    def test_nbytes_accounting(self, ompszp, smooth_data):
        field = ompszp.compress(smooth_data, abs_eb=1e-4)
        stored = int((field.code_lengths != ZERO_BLOCK_MARKER).sum())
        expected = 32 + field.n_blocks + 4 * stored + field.payload.size
        assert field.nbytes == expected

    def test_rejects_bad_block_size(self):
        with pytest.raises(ValueError, match="multiple of 8"):
            OmpSZp(block_size=10)

    def test_overflow_raises(self, ompszp):
        data = np.linspace(0, 1e9, 1000).astype(np.float32)
        with pytest.raises(OverflowError):
            ompszp.compress(data, abs_eb=1e-5)


class TestVsFZLight:
    def test_same_quantisation_same_accuracy(self, ompszp, compressor, smooth_data):
        """Both compressors share the quantiser, so NRMSE should match."""
        eb = 1e-4
        a = compressor.decompress(compressor.compress(smooth_data, abs_eb=eb))
        b = ompszp.decompress(ompszp.compress(smooth_data, abs_eb=eb))
        rms_a = np.sqrt(np.mean((a - smooth_data) ** 2))
        rms_b = np.sqrt(np.mean((b - smooth_data) ** 2))
        assert rms_b <= rms_a * 1.01

    def test_fzlight_ratio_generally_wins(self, ompszp, compressor, smooth_data):
        fz = compressor.compress(smooth_data, abs_eb=1e-4)
        omp = ompszp.compress(smooth_data, abs_eb=1e-4)
        assert fz.compression_ratio > omp.compression_ratio


class TestProperties:
    @given(
        data=arrays(
            np.float32,
            st.integers(1, 1500),
            elements=st.floats(-100, 100, width=32),
        ),
        eb=st.sampled_from([1e-1, 1e-2, 1e-3]),
    )
    @settings(max_examples=50, deadline=None)
    def test_error_bound_property(self, data, eb):
        omp = OmpSZp(n_threads=5)
        field = omp.compress(data, abs_eb=eb)
        assert check_error_bound(data, omp.decompress(field), eb)
