"""Unit + property tests for the fixed-length codec (paper §III-B3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.compression.encoding import (
    DEFAULT_BLOCK_SIZE,
    MAX_CODE_LENGTH,
    block_payload_nbytes,
    decode_blocks,
    decode_selected,
    encode_blocks,
    encode_into,
    payload_offsets,
    required_bits,
)


class TestRequiredBits:
    @pytest.mark.parametrize(
        "value,bits",
        [(0, 0), (1, 1), (2, 2), (3, 2), (4, 3), (7, 3), (8, 4), (255, 8),
         (256, 9), (2**31 - 1, 31), (2**31, 32), (2**32 - 1, 32)],
    )
    def test_exact_boundaries(self, value, bits):
        assert required_bits(np.array([value]))[0] == bits

    def test_vectorised(self):
        out = required_bits(np.array([0, 1, 5, 1024]))
        np.testing.assert_array_equal(out, [0, 1, 3, 11])

    def test_dtype_is_uint8(self):
        assert required_bits(np.array([3])).dtype == np.uint8


class TestPayloadSizes:
    def test_constant_block_free(self):
        assert block_payload_nbytes(np.array([0]), 32)[0] == 0

    @pytest.mark.parametrize("c", [1, 7, 8, 9, 31, 32])
    def test_size_formula(self, c):
        # 32 sign bits (4 bytes) + 32·c magnitude bits (4·c bytes)
        assert block_payload_nbytes(np.array([c]), 32)[0] == 4 * (1 + c)

    def test_offsets_prefix_sum(self):
        offs = payload_offsets(np.array([0, 2, 0, 1]), 32)
        np.testing.assert_array_equal(offs, [0, 0, 12, 12, 20])


class TestRoundTrip:
    def _roundtrip(self, deltas, bs=DEFAULT_BLOCK_SIZE):
        lens, payload = encode_blocks(deltas, bs)
        out = decode_blocks(lens, payload, bs)
        np.testing.assert_array_equal(out, deltas)
        return lens, payload

    def test_zeros(self):
        lens, payload = self._roundtrip(np.zeros((5, 32), dtype=np.int64))
        assert payload.size == 0
        assert (lens == 0).all()

    def test_small_values(self):
        deltas = np.arange(-32, 32, dtype=np.int64).reshape(2, 32)
        self._roundtrip(deltas)

    def test_all_code_lengths(self):
        """One block per code length 1..32 (sign varied)."""
        blocks = []
        for c in range(1, 33):
            row = np.zeros(32, dtype=np.int64)
            row[0] = (1 << c) - 1
            row[1] = -(1 << (c - 1))
            blocks.append(row)
        deltas = np.stack(blocks)
        lens, _ = self._roundtrip(deltas)
        np.testing.assert_array_equal(lens, np.arange(1, 33))

    def test_mixed_lengths_interleaved(self):
        rng = np.random.default_rng(5)
        deltas = np.zeros((64, 32), dtype=np.int64)
        deltas[::3] = rng.integers(-3, 4, (22, 32))
        deltas[1::5] = rng.integers(-(2**20), 2**20, (13, 32))
        self._roundtrip(deltas)

    def test_negative_extreme(self):
        deltas = np.full((1, 32), -(2**32 - 1), dtype=np.int64)
        self._roundtrip(deltas)

    def test_block_size_8(self):
        deltas = np.array([[1, -2, 3, -4, 5, -6, 7, -8]], dtype=np.int64)
        self._roundtrip(deltas, bs=8)

    def test_int32_input(self):
        deltas = np.array([[5, -5] + [0] * 30], dtype=np.int32)
        lens, payload = encode_blocks(deltas, 32)
        np.testing.assert_array_equal(decode_blocks(lens, payload)[0, :2], [5, -5])

    def test_overflow_raises(self):
        deltas = np.full((1, 32), 2**32, dtype=np.int64)
        with pytest.raises(OverflowError, match="error bound"):
            encode_blocks(deltas)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError, match="shape"):
            encode_blocks(np.zeros((3, 16), dtype=np.int64), 32)

    def test_rejects_non_multiple_of_8_block(self):
        with pytest.raises(ValueError, match="multiple of 8"):
            encode_blocks(np.zeros((1, 12), dtype=np.int64), 12)

    def test_decode_dtype_int32_when_possible(self):
        deltas = np.array([[7] * 32], dtype=np.int64)
        lens, payload = encode_blocks(deltas)
        assert decode_blocks(lens, payload).dtype == np.int32

    def test_decode_dtype_int64_for_32bit_codes(self):
        deltas = np.full((1, 32), 2**31, dtype=np.int64)  # needs c = 32
        lens, payload = encode_blocks(deltas)
        assert lens[0] == 32
        out = decode_blocks(lens, payload)
        assert out.dtype == np.int64
        np.testing.assert_array_equal(out, deltas)


class TestDecodeSelected:
    def test_subset_matches_full(self):
        rng = np.random.default_rng(9)
        deltas = rng.integers(-100, 100, (40, 32)).astype(np.int64)
        deltas[::4] = 0
        lens, payload, offsets = encode_into(deltas)
        idx = np.array([3, 17, 0, 39, 4])
        sub = decode_selected(idx, lens, offsets, payload)
        np.testing.assert_array_equal(sub, deltas[idx])

    def test_empty_selection(self):
        lens, payload, offsets = encode_into(np.ones((4, 32), dtype=np.int64))
        out = decode_selected(np.array([], dtype=np.int64), lens, offsets, payload)
        assert out.shape == (0, 32)

    def test_constant_blocks_decode_to_zero(self):
        deltas = np.zeros((4, 32), dtype=np.int64)
        deltas[1] = 9
        lens, payload, offsets = encode_into(deltas)
        sub = decode_selected(np.array([0, 2]), lens, offsets, payload)
        assert (sub == 0).all()

    def test_unsorted_indices(self):
        rng = np.random.default_rng(11)
        deltas = rng.integers(-(2**20), 2**20, (50, 32)).astype(np.int64)
        deltas[::5] = 0
        lens, payload, offsets = encode_into(deltas)
        idx = rng.permutation(50)
        sub = decode_selected(idx, lens, offsets, payload)
        np.testing.assert_array_equal(sub, deltas[idx])

    def test_duplicate_indices(self):
        rng = np.random.default_rng(12)
        deltas = rng.integers(-500, 500, (20, 32)).astype(np.int64)
        lens, payload, offsets = encode_into(deltas)
        idx = np.array([7, 7, 3, 19, 3, 7, 0, 0])
        sub = decode_selected(idx, lens, offsets, payload)
        np.testing.assert_array_equal(sub, deltas[idx])

    def test_unsorted_with_duplicates_randomized(self):
        rng = np.random.default_rng(13)
        deltas = rng.integers(-(2**28), 2**28, (80, 32)).astype(np.int64)
        deltas[rng.random(80) < 0.3] = 0
        lens, payload, offsets = encode_into(deltas)
        for _ in range(5):
            idx = rng.integers(0, 80, size=int(rng.integers(1, 200)))
            sub = decode_selected(idx, lens, offsets, payload)
            np.testing.assert_array_equal(sub, deltas[idx])


class TestDecodeBlocksOffsetsAndOut:
    def test_precomputed_offsets_match(self):
        rng = np.random.default_rng(21)
        deltas = rng.integers(-(2**16), 2**16, (30, 32)).astype(np.int64)
        lens, payload, offsets = encode_into(deltas)
        np.testing.assert_array_equal(
            decode_blocks(lens, payload, offsets=offsets),
            decode_blocks(lens, payload),
        )

    def test_out_buffer_is_used_and_returned(self):
        rng = np.random.default_rng(22)
        deltas = rng.integers(-100, 100, (10, 32)).astype(np.int64)
        lens, payload, offsets = encode_into(deltas)
        out = np.empty((10, 32), dtype=np.int64)
        result = decode_blocks(lens, payload, offsets=offsets, out=out)
        assert result is out
        np.testing.assert_array_equal(out, deltas)

    def test_out_overwrites_stale_contents(self):
        deltas = np.zeros((4, 32), dtype=np.int64)
        deltas[2] = 5
        lens, payload, offsets = encode_into(deltas)
        out = np.full((4, 32), -123, dtype=np.int64)
        decode_blocks(lens, payload, offsets=offsets, out=out)
        np.testing.assert_array_equal(out, deltas)

    def test_out_shape_mismatch_raises(self):
        lens, payload, offsets = encode_into(np.ones((4, 32), dtype=np.int64))
        with pytest.raises(ValueError, match="shape"):
            decode_blocks(lens, payload, offsets=offsets,
                          out=np.empty((3, 32), dtype=np.int64))

    def test_out_int32_rejected_for_32bit_codes(self):
        deltas = np.full((1, 32), 2**31, dtype=np.int64)
        lens, payload, offsets = encode_into(deltas)
        with pytest.raises(ValueError, match="int32"):
            decode_blocks(lens, payload, offsets=offsets,
                          out=np.empty((1, 32), dtype=np.int32))


@st.composite
def delta_blocks(draw):
    n_blocks = draw(st.integers(1, 12))
    # magnitudes across the full representable range, mixed signs
    return draw(
        arrays(
            np.int64,
            (n_blocks, 32),
            elements=st.integers(-(2**32 - 1), 2**32 - 1),
        )
    )


class TestCodecProperties:
    @given(deltas=delta_blocks())
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, deltas):
        lens, payload = encode_blocks(deltas)
        np.testing.assert_array_equal(decode_blocks(lens, payload), deltas)

    @given(deltas=delta_blocks())
    @settings(max_examples=30, deadline=None)
    def test_payload_size_matches_code_lengths(self, deltas):
        lens, payload = encode_blocks(deltas)
        assert payload.size == int(block_payload_nbytes(lens, 32).sum())
        assert (lens <= MAX_CODE_LENGTH).all()
