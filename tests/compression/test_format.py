"""Unit tests for the compressed container and wire format."""

import numpy as np
import pytest

from repro.compression.format import (
    block_structure,
    blocks_to_deltas,
    deltas_to_blocks,
    from_bytes,
)
from repro.compression.fzlight import FZLight


class TestBlockStructure:
    def test_total_blocks(self):
        s = block_structure(100, 32, 3)  # 33/33/34 → 2+2+2 blocks
        assert s.total_blocks == 6

    def test_blocks_per_threadblock(self):
        s = block_structure(100, 32, 3)
        np.testing.assert_array_equal(s.blocks_per_tb, [2, 2, 2])

    def test_exact_multiple(self):
        s = block_structure(96, 32, 3)
        np.testing.assert_array_equal(s.blocks_per_tb, [1, 1, 1])

    def test_empty_threadblocks(self):
        s = block_structure(2, 32, 5)
        assert s.total_blocks >= 1
        assert int(s.blocks_per_tb.sum()) == s.total_blocks

    def test_memoised(self):
        assert block_structure(50, 32, 2) is block_structure(50, 32, 2)

    def test_element_to_slot_bijective_into_grid(self):
        s = block_structure(100, 32, 3)
        slots = s.element_to_slot
        assert slots.size == 100
        assert len(np.unique(slots)) == 100
        assert slots.max() < s.total_blocks * 32


class TestBlockScatterGather:
    @pytest.mark.parametrize("n,tb", [(100, 3), (32, 1), (7, 4), (1000, 36)])
    def test_roundtrip(self, n, tb):
        s = block_structure(n, 32, tb)
        deltas = np.arange(n, dtype=np.int64) - n // 2
        grid = deltas_to_blocks(deltas, s)
        assert grid.shape == (s.total_blocks, 32)
        np.testing.assert_array_equal(blocks_to_deltas(grid, s), deltas)

    def test_padding_is_zero(self):
        s = block_structure(10, 32, 1)
        grid = deltas_to_blocks(np.ones(10, dtype=np.int64), s)
        assert grid[0, 10:].sum() == 0

    def test_matches_element_to_slot_oracle(self):
        """The fast per-thread-block copies equal the index-map definition."""
        s = block_structure(333, 32, 7)
        deltas = np.random.default_rng(1).integers(-9, 9, 333)
        grid = deltas_to_blocks(deltas, s)
        oracle = np.zeros(s.total_blocks * 32, dtype=np.int64)
        oracle[s.element_to_slot] = deltas
        np.testing.assert_array_equal(grid.reshape(-1), oracle)

    def test_preserves_dtype(self):
        s = block_structure(10, 32, 1)
        grid = deltas_to_blocks(np.ones(10, dtype=np.int32), s)
        assert grid.dtype == np.int32


class TestCompressedField:
    @pytest.fixture()
    def field(self):
        data = np.sin(np.linspace(0, 20, 5000)).astype(np.float32)
        return FZLight().compress(data, abs_eb=1e-4)

    def test_validate_passes(self, field):
        field.validate()

    def test_validate_catches_truncated_payload(self, field):
        field.payload = field.payload[:-1]
        with pytest.raises(ValueError, match="payload"):
            field.validate()

    def test_validate_catches_wrong_code_length_count(self, field):
        field.code_lengths = field.code_lengths[:-1]
        with pytest.raises(ValueError, match="code_lengths"):
            field.validate()

    def test_nbytes_counts_stream_parts(self, field):
        assert field.nbytes == len(field.to_bytes())

    def test_compression_ratio(self, field):
        assert field.compression_ratio == pytest.approx(
            field.n * 4 / field.nbytes
        )

    def test_compatible_with_self(self, field):
        assert field.compatible_with(field.copy())

    def test_incompatible_different_eb(self, field):
        other = field.copy()
        other.error_bound = 2e-4
        assert not field.compatible_with(other)

    def test_copy_is_deep_for_arrays(self, field):
        other = field.copy()
        other.payload[:1] = 255
        assert field.payload[0] != other.payload[0] or field.payload.size == 0


class TestWireFormat:
    @pytest.fixture()
    def field(self):
        data = np.cos(np.linspace(0, 8, 3001)).astype(np.float32)
        return FZLight(n_threadblocks=4).compress(data, abs_eb=1e-3)

    def test_roundtrip(self, field):
        out = from_bytes(field.to_bytes())
        assert out.n == field.n
        assert out.error_bound == field.error_bound
        np.testing.assert_array_equal(out.code_lengths, field.code_lengths)
        np.testing.assert_array_equal(out.outliers, field.outliers)
        np.testing.assert_array_equal(out.payload, field.payload)

    def test_decompresses_identically(self, field):
        comp = FZLight(n_threadblocks=4)
        np.testing.assert_array_equal(
            comp.decompress(from_bytes(field.to_bytes())), comp.decompress(field)
        )

    def test_bad_magic(self, field):
        blob = bytearray(field.to_bytes())
        blob[0] = 0
        with pytest.raises(ValueError, match="magic"):
            from_bytes(bytes(blob))

    def test_truncated_header(self):
        with pytest.raises(ValueError, match="header"):
            from_bytes(b"HZ")

    def test_truncated_body(self, field):
        with pytest.raises(ValueError, match="bytes"):
            from_bytes(field.to_bytes()[:-3])

    def test_bad_version(self, field):
        blob = bytearray(field.to_bytes())
        blob[4] = 99
        with pytest.raises(ValueError, match="version"):
            from_bytes(bytes(blob))
