"""Tests for the Table-I dataset registry."""

import numpy as np
import pytest

from repro.datasets.registry import DATASETS, dataset_names, get_spec


class TestRegistry:
    def test_five_datasets(self):
        assert len(DATASETS) == 5

    def test_table1_order(self):
        assert dataset_names() == ["sim1", "sim2", "nyx", "cesm", "hurricane"]

    def test_paper_dims(self):
        assert get_spec("sim1").dims == (449, 449, 235)
        assert get_spec("sim2").dims == (849, 849, 235)
        assert get_spec("nyx").dims == (512, 512, 512)
        assert get_spec("cesm").dims == (1800, 3600)
        assert get_spec("hurricane").dims == (100, 500, 500)

    def test_paper_field_counts(self):
        assert get_spec("sim1").n_fields == 3601
        assert get_spec("nyx").n_fields == 6
        assert get_spec("hurricane").n_fields == 13

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="sim1"):
            get_spec("does-not-exist")

    def test_field_elements(self):
        assert get_spec("nyx").field_elements == 512**3


class TestScaledDims:
    def test_identity_scale(self):
        assert get_spec("nyx").scaled_dims(1.0) == (512, 512, 512)

    def test_volume_scales_roughly_linearly(self):
        spec = get_spec("nyx")
        small = np.prod(spec.scaled_dims(0.1))
        assert 0.05 * spec.field_elements < small < 0.2 * spec.field_elements

    def test_axes_floor(self):
        dims = get_spec("hurricane").scaled_dims(1e-6)
        assert all(d >= 16 for d in dims)

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            get_spec("nyx").scaled_dims(0.0)
        with pytest.raises(ValueError):
            get_spec("nyx").scaled_dims(2.0)

    def test_preserves_ndim(self):
        assert len(get_spec("cesm").scaled_dims(0.1)) == 2
