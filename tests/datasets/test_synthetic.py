"""Tests for the synthetic dataset generators.

Beyond shape/determinism, these tests pin the *block statistics* each
generator was designed to reproduce (DESIGN.md's substitution argument):
zero fractions, dynamic range, and the dominant hZ-dynamic pipeline.
"""

import numpy as np
import pytest

from repro.compression import FZLight, resolve_error_bound
from repro.datasets import dataset_names, generate_field, generate_pair
from repro.homomorphic import HZDynamic

SCALE = 0.01  # keep generator tests fast


class TestBasics:
    @pytest.mark.parametrize("name", dataset_names())
    def test_dtype_and_shape(self, name):
        field = generate_field(name, 0, scale=SCALE, seed=1)
        assert field.dtype == np.float32
        assert field.ndim == (2 if name == "cesm" else 3)
        assert np.isfinite(field).all()

    @pytest.mark.parametrize("name", dataset_names())
    def test_deterministic(self, name):
        a = generate_field(name, 2, scale=SCALE, seed=5)
        b = generate_field(name, 2, scale=SCALE, seed=5)
        np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("name", dataset_names())
    def test_field_index_changes_content(self, name):
        a = generate_field(name, 0, scale=SCALE, seed=5)
        b = generate_field(name, 1, scale=SCALE, seed=5)
        assert not np.array_equal(a, b)

    def test_explicit_dims(self):
        field = generate_field("nyx", 0, dims=(32, 32, 32), seed=1)
        assert field.shape == (32, 32, 32)

    def test_cesm_rejects_3d(self):
        with pytest.raises(ValueError, match="2-D"):
            generate_field("cesm", 0, dims=(8, 8, 8), seed=1)

    def test_generate_pair(self):
        a, b = generate_pair("sim1", scale=SCALE, seed=3)
        assert a.shape == b.shape
        assert not np.array_equal(a, b)


class TestBlockStatistics:
    def test_seismic_fields_have_zero_halo(self):
        for name in ("sim1", "sim2"):
            field = generate_field(name, 0, scale=SCALE, seed=3)
            assert (field == 0).mean() > 0.3, name

    def test_nyx_dynamic_range(self):
        """NYX-like: range spans ≳ 4 decades (paper: ~6)."""
        field = generate_field("nyx", 0, scale=SCALE, seed=3)
        positive = field[field > 0]
        assert positive.max() / positive.min() > 1e4

    def test_hurricane_moisture_fields_sparse(self):
        wind = generate_field("hurricane", 0, scale=SCALE, seed=3)
        moisture = generate_field("hurricane", 1, scale=SCALE, seed=3)
        assert (moisture == 0).mean() > 0.5
        assert (wind == 0).mean() < 0.1

    def test_cesm_everywhere_varying(self):
        field = generate_field("cesm", 0, scale=SCALE, seed=3)
        assert (field == 0).mean() < 0.01


class TestPipelineCharacter:
    """Dominant hZ-dynamic pipeline per dataset at REL 1e-3 (Table V)."""

    @pytest.fixture()
    def mixes(self):
        comp = FZLight()
        out = {}
        for name in dataset_names():
            a, b = generate_pair(name, scale=SCALE, seed=3)
            eb = resolve_error_bound(a, rel_eb=1e-3)
            ca = comp.compress(a, abs_eb=eb)
            cb = comp.compress(b.ravel(), abs_eb=eb)
            hz = HZDynamic()
            hz.add(ca, cb)
            out[name] = hz.stats.percentages
        return out

    def test_nyx_pipeline1_dominates(self, mixes):
        assert mixes["nyx"][0] > 80

    def test_cesm_pipeline4_dominates(self, mixes):
        assert mixes["cesm"][3] > 80

    def test_hurricane_one_sided_dominates(self, mixes):
        assert mixes["hurricane"][1] + mixes["hurricane"][2] > 70

    def test_sim1_constant_plus_one_sided(self, mixes):
        p = mixes["sim1"]
        assert p[0] + p[1] + p[2] > 60

    def test_sim2_pipeline1_heavy(self, mixes):
        assert mixes["sim2"][0] > 50


class TestRatioOrdering:
    def test_sim2_and_nyx_compress_best(self):
        """Paper Table III: Sim-2 and NYX carry the highest ratios."""
        comp = FZLight()
        ratios = {}
        for name in dataset_names():
            field = generate_field(name, 0, scale=SCALE, seed=3)
            ratios[name] = comp.compress(field, rel_eb=1e-3).compression_ratio
        assert ratios["sim2"] > ratios["cesm"]
        assert ratios["sim2"] > ratios["hurricane"]
        assert ratios["nyx"] > ratios["cesm"]

    def test_ratio_decreases_with_tighter_bound(self):
        comp = FZLight()
        field = generate_field("sim1", 0, scale=SCALE, seed=3)
        r = [
            comp.compress(field, rel_eb=rel).compression_ratio
            for rel in (1e-1, 1e-2, 1e-3, 1e-4)
        ]
        assert r == sorted(r, reverse=True)


class TestSnapshotSeries:
    def test_series_length_and_shapes(self):
        from repro.datasets import snapshot_series

        series = snapshot_series("sim1", 4, scale=SCALE, seed=3)
        assert len(series) == 4
        assert all(s.shape == series[0].shape for s in series)

    def test_series_members_distinct(self):
        from repro.datasets import snapshot_series

        series = snapshot_series("hurricane", 3, scale=SCALE, seed=3)
        assert not np.array_equal(series[0], series[1])
        assert not np.array_equal(series[1], series[2])

    def test_series_rejects_zero(self):
        from repro.datasets import snapshot_series

        with pytest.raises(ValueError):
            snapshot_series("nyx", 0, scale=SCALE)
