"""Tests for the JSON experiment-record store."""

import json

import pytest

from repro.bench.results import ExperimentRecord, load_records, save_records


@pytest.fixture()
def records():
    return [
        ExperimentRecord(
            experiment="fig10",
            kernel="hzccl",
            parameters={"nodes": 64, "mt": True},
            metrics={"speedup": 4.32, "total_s": 0.08},
        ),
        ExperimentRecord(
            experiment="table3",
            kernel="fzlight",
            parameters={"dataset": "nyx", "rel": 1e-3},
            metrics={"ratio": 118.77, "nrmse": 2.16e-5},
        ),
    ]


class TestRoundTrip:
    def test_save_and_load(self, records, tmp_path):
        path = tmp_path / "results.json"
        save_records(records, path, note="unit test")
        loaded = load_records(path)
        assert len(loaded) == 2
        assert loaded[0].experiment == "fig10"
        assert loaded[0].metrics["speedup"] == pytest.approx(4.32)
        assert loaded[1].parameters["dataset"] == "nyx"

    def test_environment_metadata(self, records, tmp_path):
        path = tmp_path / "results.json"
        save_records(records, path)
        document = json.loads(path.read_text())
        assert "python" in document["environment"]
        assert document["schema_version"] == 1

    def test_note_persisted(self, records, tmp_path):
        path = tmp_path / "results.json"
        save_records(records, path, note="run A")
        assert json.loads(path.read_text())["note"] == "run A"

    def test_rejects_wrong_schema(self, records, tmp_path):
        path = tmp_path / "results.json"
        save_records(records, path)
        document = json.loads(path.read_text())
        document["schema_version"] = 99
        path.write_text(json.dumps(document))
        with pytest.raises(ValueError, match="schema"):
            load_records(path)

    def test_record_rejects_wrong_schema(self):
        with pytest.raises(ValueError, match="schema"):
            ExperimentRecord.from_dict({"experiment": "x", "kernel": "y"})

    def test_empty_records(self, tmp_path):
        path = tmp_path / "empty.json"
        save_records([], path)
        assert load_records(path) == []
