"""Tests for timing helpers and table rendering."""

import pytest

from repro.bench.tables import format_table, print_table
from repro.bench.timing import best_of, throughput_gbps


class TestBestOf:
    def test_counts_calls(self):
        calls = []
        best_of(lambda: calls.append(1), repeats=3, warmup=2)
        assert len(calls) == 5

    def test_returns_positive_time(self):
        res = best_of(lambda: sum(range(1000)), repeats=2)
        assert res.seconds > 0
        assert res.repeats == 2

    def test_throughput(self):
        res = best_of(lambda: None, repeats=1, warmup=0)
        assert res.throughput_Bps(100) == pytest.approx(100 / res.seconds)

    def test_rejects_zero_repeats(self):
        with pytest.raises(ValueError):
            best_of(lambda: None, repeats=0)


class TestThroughputGbps:
    def test_value(self):
        assert throughput_gbps(2 * 10**9, 2.0) == pytest.approx(1.0)

    def test_rejects_zero_time(self):
        with pytest.raises(ValueError):
            throughput_gbps(100, 0.0)


class TestFormatTable:
    def test_headers_and_rows(self):
        out = format_table(["a", "bb"], [[1, 2.5], [3, 4.0]])
        lines = out.splitlines()
        assert "a" in lines[0] and "bb" in lines[0]
        assert "-" in lines[1]
        assert len(lines) == 4

    def test_title(self):
        out = format_table(["x"], [[1]], title="Table I")
        assert out.splitlines()[0] == "Table I"

    def test_float_formatting(self):
        out = format_table(["v"], [[0.123456], [1.2e-9], [12345.0]])
        assert "0.123" in out
        assert "1.200e-09" in out
        assert "1.234e+04" in out or "12345" in out

    def test_alignment(self):
        out = format_table(["col", "c2"], [["x", 1], ["longer", 2]])
        lines = out.splitlines()
        assert len(lines[1]) >= len("longer") + len("c2")

    def test_print_table_smoke(self, capsys):
        print_table(["h"], [[1]])
        captured = capsys.readouterr()
        assert "h" in captured.out
