"""Tests for the STREAM benchmark harness."""

import pytest

from repro.bench.stream import StreamResult, memory_bandwidth_efficiency, run_stream


class TestRunStream:
    @pytest.fixture(scope="class")
    def result(self):
        # small arrays: we test plumbing, not the machine
        return run_stream(n_elements=200_000, repeats=2)

    def test_all_kernels_positive(self, result):
        assert result.copy_Bps > 0
        assert result.scale_Bps > 0
        assert result.add_Bps > 0
        assert result.triad_Bps > 0

    def test_peak_is_max(self, result):
        assert result.peak_Bps == max(
            result.copy_Bps, result.scale_Bps, result.add_Bps, result.triad_Bps
        )

    def test_plausible_magnitude(self, result):
        # any machine: between 100 MB/s and 10 TB/s
        assert 1e8 < result.peak_Bps < 1e13

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            run_stream(n_elements=0)
        with pytest.raises(ValueError):
            run_stream(repeats=0)


class TestEfficiency:
    def test_formula(self):
        stream = StreamResult(1e9, 1e9, 1e9, 2e9)
        # 2 passes over 1 GB in 2 s = 1 GB/s achieved vs 2 GB/s peak
        assert memory_bandwidth_efficiency(10**9, 2.0, stream) == pytest.approx(0.5)

    def test_passes_parameter(self):
        stream = StreamResult(1e9, 1e9, 1e9, 1e9)
        eff1 = memory_bandwidth_efficiency(10**9, 1.0, stream, passes=1)
        eff3 = memory_bandwidth_efficiency(10**9, 1.0, stream, passes=3)
        assert eff3 == pytest.approx(3 * eff1)

    def test_rejects_zero_time(self):
        stream = StreamResult(1e9, 1e9, 1e9, 1e9)
        with pytest.raises(ValueError):
            memory_bandwidth_efficiency(10**9, 0.0, stream)
