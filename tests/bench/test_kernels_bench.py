"""The kernel perf harness: document shape, CLI, regression gate."""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.bench.kernels import (
    REDUCE_KS,
    compare_to_baseline,
    format_report,
    run_kernel_bench,
)

EXPECTED_KERNELS = {"encode", "classify_encode", "decode", "decode_selected"} | {
    f"reduce_fused_k{k}" for k in REDUCE_KS
}


@pytest.fixture(scope="module")
def small_doc():
    return run_kernel_bench(mb=0.25, repeats=1)


class TestDocument:
    def test_every_backend_reports_every_kernel(self, small_doc):
        assert small_doc["backends"], "no backends measured"
        for kernels in small_doc["backends"].values():
            assert set(kernels) == EXPECTED_KERNELS
            for r in kernels.values():
                assert r["seconds"] > 0 and r["gbps"] > 0

    def test_status_covers_builtins(self, small_doc):
        assert {"numpy", "numba", "cupy"} <= set(small_doc["backend_status"])

    def test_stream_baseline_and_fractions(self, small_doc):
        stream = small_doc["stream"]
        assert stream["gbps"] > 0 and stream["seconds"] > 0
        for kernels in small_doc["backends"].values():
            for r in kernels.values():
                assert r["frac_stream"] == pytest.approx(
                    r["gbps"] / stream["gbps"]
                )

    def test_json_serialisable(self, small_doc):
        restored = json.loads(json.dumps(small_doc))
        assert restored["bench"] == "kernels"

    def test_report_renders(self, small_doc):
        text = format_report(small_doc)
        assert "encode" in text and "GB/s" in text


class TestCompare:
    def test_no_regression_against_self(self, small_doc):
        assert compare_to_baseline(small_doc, small_doc, tolerance=2.0) == []

    def test_detects_regression(self, small_doc):
        slowed = json.loads(json.dumps(small_doc))
        for kernels in slowed["backends"].values():
            for r in kernels.values():
                r["gbps"] /= 10.0
        failures = compare_to_baseline(slowed, small_doc, tolerance=2.0)
        assert failures and "slower" in failures[0]

    def test_new_backend_in_current_is_ignored(self, small_doc):
        baseline = json.loads(json.dumps(small_doc))
        current = json.loads(json.dumps(small_doc))
        current["backends"]["hypothetical"] = {
            "encode": {"seconds": 1.0, "gbps": 0.0001}
        }
        assert compare_to_baseline(current, baseline) == []


class TestRequire:
    def test_require_backend_ok(self):
        from repro.bench.kernels import require_backend

        require_backend("numpy")

    def test_require_unknown_backend_raises(self):
        from repro.bench.kernels import require_backend

        with pytest.raises(RuntimeError, match="unknown kernel backend"):
            require_backend("not-a-backend")

    def test_require_unavailable_backend_carries_probe_error(self):
        from repro.bench.kernels import require_backend
        from repro.kernels.dispatch import backend_status

        status = backend_status()
        missing = [n for n, s in status.items() if s != "ok"]
        if not missing:
            pytest.skip("every built-in backend is installed here")
        with pytest.raises(RuntimeError, match=missing[0]):
            require_backend(missing[0])

    def test_cli_require_missing_exits_nonzero(self, capsys):
        from repro.cli import main

        rc = main([
            "bench-kernels", "--mb", "0.25", "--repeats", "1",
            "--backend", "numpy", "--require", "not-a-backend",
        ])
        assert rc == 2
        assert "unknown kernel backend" in capsys.readouterr().err

    def test_cli_require_available_passes(self, capsys):
        from repro.cli import main

        rc = main([
            "bench-kernels", "--mb", "0.25", "--repeats", "1",
            "--backend", "numpy", "--require", "numpy",
        ])
        assert rc == 0
        capsys.readouterr()


class TestCLI:
    def test_bench_kernels_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        out_json = tmp_path / "BENCH_kernels.json"
        rc = main([
            "bench-kernels", "--mb", "0.25", "--repeats", "1",
            "--backend", "numpy", "--json", str(out_json),
        ])
        assert rc == 0
        doc = json.loads(out_json.read_text())
        assert set(doc["backends"]) == {"numpy"}
        assert "encode" in capsys.readouterr().out

    def test_compare_gate_passes_and_fails(self, tmp_path, capsys):
        from repro.cli import main

        baseline = tmp_path / "baseline.json"
        rc = main([
            "bench-kernels", "--mb", "0.25", "--repeats", "1",
            "--backend", "numpy", "--json", str(baseline),
        ])
        assert rc == 0
        rc = main([
            "bench-kernels", "--mb", "0.25", "--repeats", "2",
            "--backend", "numpy", "--compare", str(baseline),
            "--tolerance", "25.0",
        ])
        assert rc == 0
        # an absurd tolerance below 1.0 must trip the gate on jitter alone
        doc = json.loads(baseline.read_text())
        for kernels in doc["backends"].values():
            for r in kernels.values():
                r["gbps"] *= 1e6
        baseline.write_text(json.dumps(doc))
        rc = main([
            "bench-kernels", "--mb", "0.25", "--repeats", "1",
            "--backend", "numpy", "--compare", str(baseline),
        ])
        assert rc == 1
        assert "PERF REGRESSION" in capsys.readouterr().out

    def test_reduce_fused_throughput_scales_with_k(self):
        doc = run_kernel_bench(mb=0.5, repeats=1, backends=("numpy",))
        ks = sorted(REDUCE_KS)
        gbps = [
            doc["backends"]["numpy"][f"reduce_fused_k{k}"]["gbps"] for k in ks
        ]
        # fused reduction amortises the single re-encode over k operands,
        # so per-processed-byte throughput must not collapse at higher k
        assert gbps[-1] > 0.3 * gbps[0]


class TestKernelGateScript:
    """End-to-end runs of ``benchmarks/kernel_gate.py`` (the CI gate)."""

    REPO = Path(__file__).resolve().parents[2]

    def _run(self, *args):
        env = dict(os.environ, PYTHONPATH=str(self.REPO / "src"))
        return subprocess.run(
            [
                sys.executable,
                str(self.REPO / "benchmarks" / "kernel_gate.py"),
                "--mb", "0.25", "--repeats", "1", *args,
            ],
            capture_output=True,
            text=True,
            env=env,
        )

    def test_reports_roofline_and_passes_without_floors(self):
        proc = self._run()
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "STREAM" in proc.stdout and "kernel gate ok" in proc.stdout

    def test_unmet_roofline_floor_fails(self):
        proc = self._run("--min-frac", "numpy:encode:99.0")
        assert proc.returncode == 1
        assert "KERNEL GATE FAILED" in proc.stdout

    def test_unmet_speedup_floor_fails(self):
        proc = self._run("--min-speedup", "numpy:numpy:encode:99.0")
        assert proc.returncode == 1
        assert "floor 99.00x" in proc.stdout

    def test_missing_required_backend_fails(self):
        proc = self._run("--require", "not-a-backend")
        assert proc.returncode == 1
        assert "unknown kernel backend" in proc.stdout


def test_reduce_fused_matches_pairwise_fold():
    """The harness fields drive the same engine the collectives use."""
    from repro.bench.kernels import _make_fields
    from repro.homomorphic.hzdynamic import HZDynamic

    fields = _make_fields(4, 8192)
    engine = HZDynamic(collect_stats=False)
    fused = engine.reduce_fused(fields)
    fold = engine.reduce(fields, order="sequential")
    np.testing.assert_array_equal(fused.payload, fold.payload)
    np.testing.assert_array_equal(fused.code_lengths, fold.code_lengths)
