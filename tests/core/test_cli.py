"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["teleport"])

    def test_compress_dataset_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compress", "not-a-dataset"])

    def test_scaling_defaults(self):
        args = build_parser().parse_args(["scaling"])
        assert args.op == "allreduce"
        assert args.mb == 646


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "hZCCL" in out
        assert "sim1" in out
        assert "12.5 GB/s" in out

    def test_stream_small(self, capsys):
        assert main(["stream", "--elements", "100000", "--repeats", "1"]) == 0
        assert "STREAM" in capsys.readouterr().out

    def test_compress(self, capsys):
        assert main(["compress", "nyx", "--scale", "0.005"]) == 0
        out = capsys.readouterr().out
        assert "fZ-light" in out
        assert "ratio=" in out

    def test_compress_with_baseline(self, capsys):
        assert main(
            ["compress", "hurricane", "--scale", "0.005", "--baseline"]
        ) == 0
        assert "ompSZp" in capsys.readouterr().out

    def test_pipelines(self, capsys):
        assert main(["pipelines", "nyx", "--scale", "0.005"]) == 0
        out = capsys.readouterr().out
        assert "P1=" in out

    def test_scaling(self, capsys):
        assert main(["scaling", "--op", "reduce_scatter", "--mb", "100"]) == 0
        out = capsys.readouterr().out
        assert "512" in out
        assert "hZCCL MT" in out

    def test_stacking(self, capsys):
        assert main(["stacking", "--ranks", "4", "--size", "64"]) == 0
        out = capsys.readouterr().out
        assert "PSNR" in out
        assert "cleaner" in out
