"""Unit tests for CollectiveConfig."""

import pytest

from repro.core.config import DEFAULT_CONFIG, CollectiveConfig


class TestDefaults:
    def test_paper_defaults(self):
        assert DEFAULT_CONFIG.error_bound == 1e-4
        assert DEFAULT_CONFIG.block_size == 32
        assert DEFAULT_CONFIG.n_threadblocks == 18
        assert DEFAULT_CONFIG.multithread is False

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_CONFIG.error_bound = 1.0  # type: ignore[misc]


class TestValidation:
    def test_rejects_zero_eb(self):
        with pytest.raises(ValueError):
            CollectiveConfig(error_bound=0.0)

    def test_rejects_bad_block_size(self):
        with pytest.raises(ValueError):
            CollectiveConfig(block_size=12)

    def test_rejects_zero_threadblocks(self):
        with pytest.raises(ValueError):
            CollectiveConfig(n_threadblocks=0)

    def test_rejects_zero_thread_speedup(self):
        with pytest.raises(ValueError):
            CollectiveConfig(thread_speedup=0)


class TestWithMode:
    def test_switches_mode_only(self):
        st = CollectiveConfig(error_bound=5e-4)
        mt = st.with_mode(True)
        assert mt.multithread is True
        assert mt.error_bound == st.error_bound
        assert st.multithread is False
