"""Tests for the request → plan → execute pipeline (DESIGN.md §16)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import HZCCL, CollectiveConfig
from repro.collectives import hzccl_allreduce
from repro.core.pipeline import (
    PLAN_CACHE,
    CollectiveRequest,
    PayloadSpec,
    Plan,
    PlanCache,
    execute,
    plan,
)
from repro.obs.metrics import METRICS, metrics_enabled
from repro.runtime import SimCluster
from repro.schedule import CodecSpec, batched_fused_reduce


@pytest.fixture()
def data4():
    rng = np.random.default_rng(11)
    return [
        np.cumsum(rng.normal(0, 0.02, 613)).astype(np.float32)
        for _ in range(4)
    ]


class TestRequestValidation:
    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="op must be one of"):
            CollectiveRequest(op="allgather", n_ranks=2)

    def test_bad_rank_and_session_counts(self):
        with pytest.raises(ValueError, match="n_ranks must be >= 1"):
            CollectiveRequest(op="reduce", n_ranks=0)
        with pytest.raises(ValueError, match="sessions must be >= 1"):
            CollectiveRequest(op="batched-reduce", n_ranks=2, sessions=0)

    def test_tune_limited_to_tunable_ops(self):
        with pytest.raises(ValueError, match="not tunable"):
            CollectiveRequest(op="reduce_scatter", n_ranks=2, tune=True)

    def test_requests_are_hashable_and_frozen(self):
        r = CollectiveRequest(op="reduce", n_ranks=4)
        assert hash(r) == hash(CollectiveRequest(op="reduce", n_ranks=4))
        with pytest.raises(AttributeError):
            r.n_ranks = 8

    def test_payload_spec_of_array(self):
        spec = PayloadSpec.of(np.zeros((2, 32), dtype=np.float32))
        assert spec == PayloadSpec(dtype="float32", elements=64)
        assert spec.nbytes == 256


class TestStaticDispatch:
    def test_family_per_kernel(self):
        cases = {
            ("allreduce", "hzccl"): "hzccl",
            ("allreduce", "ccoll"): "ccoll",
            ("allreduce", "mpi"): "mpi",
            ("reduce", "hzccl-direct"): "hzccl-direct",
            ("bcast", "mpi"): "mpi",
            ("reduce_scatter", "ccoll"): "ccoll",
        }
        for (op, kernel), family in cases.items():
            p = plan(
                CollectiveRequest(op=op, n_ranks=4, kernel=kernel),
                cache=None,
            )
            assert p.family == family and p.runner is not None
            assert p.source == "static" and p.pick is None

    def test_unknown_kernels_keep_exact_messages(self):
        with pytest.raises(ValueError, match="kernel must be one of"):
            plan(CollectiveRequest(op="allreduce", n_ranks=2, kernel="nccl"),
                 cache=None)
        with pytest.raises(
            ValueError, match="'hzccl', 'hzccl-direct' or 'mpi'"
        ):
            plan(CollectiveRequest(op="reduce", n_ranks=2, kernel="x"),
                 cache=None)
        with pytest.raises(ValueError, match="'hzccl' or 'mpi'"):
            plan(CollectiveRequest(op="bcast", n_ranks=2, kernel="x"),
                 cache=None)

    def test_plan_then_execute_matches_direct_family_call(self, data4):
        config = CollectiveConfig()
        p = plan(CollectiveRequest(op="allreduce", n_ranks=4), config,
                 cache=None)
        via_pipeline = execute(p, data4, config=config)
        direct = hzccl_allreduce(
            SimCluster(n_ranks=4, network=config.network), data4, config
        )
        assert via_pipeline.bytes_on_wire == direct.bytes_on_wire
        for a, b in zip(via_pipeline.outputs, direct.outputs):
            assert np.array_equal(a, b)

    def test_tune_without_roughness_raises(self):
        with pytest.raises(ValueError, match="classified roughness"):
            plan(
                CollectiveRequest(op="allreduce", n_ranks=4, tune=True),
                cache=None,
            )


class TestBatchedPlan:
    def test_batched_plan_carries_schedule_and_cost(self):
        p = plan(
            CollectiveRequest(
                op="batched-reduce",
                n_ranks=4,
                payload=PayloadSpec(elements=1024),
                sessions=3,
            ),
            cache=None,
        )
        assert p.family == "batched-fused"
        assert p.schedule is not None and p.spec is not None
        assert p.cost_s is not None and p.cost_s > 0

    def test_batched_execute_matches_independent_reduces(self, data4):
        lib = HZCCL()
        batch = [data4, [a * 2 for a in data4]]
        result = lib.batched_reduce(batch)
        assert len(result.outputs) == 2  # indexed by session
        for s, session in enumerate(batch):
            independent = lib.reduce(session).outputs[0]
            assert np.array_equal(result.outputs[s], independent)

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError, match="at least one session"):
            HZCCL().batched_reduce([])


class TestPlanCache:
    def test_repeated_plans_hit(self):
        cache = PlanCache()
        request = CollectiveRequest(op="reduce", n_ranks=4)
        first = plan(request, cache=cache)
        second = plan(request, cache=cache)
        assert second is first
        assert cache.stats() == {
            "size": 1, "hits": 1, "misses": 1, "hit_rate": 0.5,
        }

    def test_config_knobs_split_entries(self):
        cache = PlanCache()
        request = CollectiveRequest(op="reduce", n_ranks=4)
        plan(request, CollectiveConfig(), cache=cache)
        plan(request, CollectiveConfig(error_bound=1e-3), cache=cache)
        assert len(cache) == 2 and cache.hits == 0

    def test_execution_only_config_shares_the_entry(self):
        # fault plans / retry / threading are execute-time concerns:
        # they must not fragment the cache (DESIGN.md §16 keying table)
        cache = PlanCache()
        request = CollectiveRequest(op="reduce", n_ranks=4)
        plan(request, CollectiveConfig(), cache=cache)
        plan(request, CollectiveConfig(multithread=True), cache=cache)
        assert cache.hits == 1

    def test_explicit_table_bypasses_cache(self):
        from repro.schedule.tuner import TuningTable

        cache = PlanCache()
        request = CollectiveRequest(
            op="reduce",
            n_ranks=4,
            payload=PayloadSpec(elements=1024),
            tune=True,
            roughness="smooth",
        )
        plan(request, table=TuningTable(), cache=cache)
        assert len(cache) == 0 and cache.misses == 0

    def test_lru_evicts_oldest(self):
        cache = PlanCache(maxsize=2)
        for n in (2, 3, 4):
            plan(CollectiveRequest(op="reduce", n_ranks=n), cache=cache)
        assert len(cache) == 2
        plan(CollectiveRequest(op="reduce", n_ranks=2), cache=cache)
        assert cache.hits == 0  # n_ranks=2 was evicted

    def test_cache_counters_reach_metrics(self):
        cache = PlanCache()
        request = CollectiveRequest(op="bcast", n_ranks=4)
        with metrics_enabled():
            plan(request, cache=cache)
            plan(request, cache=cache)
            assert METRICS.counter("plan.cache.miss") == 1
            assert METRICS.counter("plan.cache.hit") == 1

    def test_facade_populates_the_process_cache(self, data4):
        PLAN_CACHE.clear()
        lib = HZCCL()
        lib.reduce(data4)
        lib.reduce(data4)
        assert PLAN_CACHE.hits >= 1


class TestExecuteStatePath:
    def test_from_schedule_runs_on_sim_executor(self):
        schedule = batched_fused_reduce(4, 2, root=0)
        spec = CodecSpec(kind="homomorphic", error_bound=1e-4)
        p = Plan.from_schedule(schedule, spec)
        assert p.source == "schedule" and p.family == schedule.name
        rng = np.random.default_rng(3)
        batch = [
            [rng.normal(size=256).astype(np.float32) for _ in range(4)]
            for _ in range(2)
        ]
        state = [
            {("v", s, r): batch[s][r].copy() for s in range(2)}
            for r in range(4)
        ]
        outcome = execute(p, state=state)
        assert not outcome.degraded and outcome.wire > 0

    def test_state_path_requires_schedule(self):
        p = plan(CollectiveRequest(op="reduce", n_ranks=2), cache=None)
        with pytest.raises(ValueError, match="schedule-backed plan"):
            execute(p, state=[{}, {}])

    def test_data_path_requires_runner(self):
        schedule = batched_fused_reduce(2, 1, root=0)
        p = Plan.from_schedule(
            schedule, CodecSpec(kind="homomorphic", error_bound=1e-4)
        )
        with pytest.raises(ValueError, match="runner-backed plan"):
            execute(p, [np.zeros(8, dtype=np.float32)] * 2)


class TestTunedPlanMetadata:
    def test_tuned_plan_records_pick_and_source(self):
        request = CollectiveRequest(
            op="reduce",
            n_ranks=4,
            payload=PayloadSpec(elements=4096),
            tune=True,
            roughness="smooth",
        )
        p = plan(request, cache=None)
        assert p.pick is not None
        assert p.source in ("table", "memo", "enumerated")
        assert p.family == p.pick.slug()
        assert p.cost_s is not None
