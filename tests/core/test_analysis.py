"""Tests for the closed-form cost/error analysis (§III-C identities)."""

import numpy as np
import pytest

from repro.core.analysis import (
    allreduce_counts,
    cost_advantage_allreduce,
    cost_advantage_reduce_scatter,
    error_bounds,
    hzccl_breakeven_hpr,
    reduce_scatter_counts,
)
from repro.core.cost_model import PAPER_BROADWELL, CostRates


class TestOperationCounts:
    def test_paper_rs_counts(self):
        """§III-C1: C-Coll (N−1)(CPR+DPR+CPT); hZCCL N·CPR + (N−1)·HPR + DPR."""
        n = 8
        cc = reduce_scatter_counts(n, "ccoll")
        assert (cc.cpr, cc.dpr, cc.cpt, cc.hpr) == (7, 7, 7, 0)
        hz = reduce_scatter_counts(n, "hzccl")
        assert (hz.cpr, hz.dpr, hz.cpt, hz.hpr) == (8, 1, 0, 7)

    def test_paper_ar_counts(self):
        """§III-C2: C-Coll N·CPR + 2(N−1)·DPR + (N−1)·CPT; hZCCL fused."""
        n = 8
        cc = allreduce_counts(n, "ccoll")
        assert (cc.cpr, cc.dpr, cc.cpt, cc.hpr) == (8, 14, 7, 0)
        hz = allreduce_counts(n, "hzccl")
        assert (hz.cpr, hz.dpr, hz.cpt, hz.hpr) == (8, 7, 0, 7)

    def test_mpi_counts(self):
        mpi = reduce_scatter_counts(4, "mpi")
        assert (mpi.cpr, mpi.dpr, mpi.hpr) == (0, 0, 0)
        assert mpi.cpt == 3

    def test_unknown_kernel(self):
        with pytest.raises(ValueError):
            reduce_scatter_counts(4, "nccl")
        with pytest.raises(ValueError):
            allreduce_counts(4, "nccl")

    def test_cost_applies_rates(self):
        rates = CostRates(1e-9, 1e-9, 1e-9, 1e-9, 10.0, op_overhead_s=0.0)
        counts = reduce_scatter_counts(4, "mpi")
        assert counts.cost(rates, 1000) == pytest.approx(3 * 1000 * 1e-9)


class TestPaperIdentities:
    def test_rs_advantage_formula(self):
        """Direct check of (N−1)(DPR+CPT−HPR) − CPR − DPR."""
        rates = CostRates(
            cpr_s_per_byte=2e-9,
            dpr_s_per_byte=1e-9,
            hpr_s_per_byte=5e-10,
            cpt_s_per_byte=3e-10,
            ratio=10,
            op_overhead_s=0.0,
        )
        n, block = 16, 10**6
        expected = block * (
            (n - 1) * (1e-9 + 3e-10 - 5e-10) - 2e-9 - 1e-9
        )
        assert cost_advantage_reduce_scatter(n, rates, block) == pytest.approx(expected)

    def test_ar_advantage_formula(self):
        """Direct check of (N−1)(DPR−HPR) + (N−1)·CPT."""
        rates = CostRates(
            cpr_s_per_byte=2e-9,
            dpr_s_per_byte=1e-9,
            hpr_s_per_byte=5e-10,
            cpt_s_per_byte=3e-10,
            ratio=10,
            op_overhead_s=0.0,
        )
        n, block = 16, 10**6
        expected = block * ((n - 1) * (1e-9 - 5e-10) + (n - 1) * 3e-10)
        assert cost_advantage_allreduce(n, rates, block) == pytest.approx(expected)

    def test_advantage_amplified_by_n(self):
        adv8 = cost_advantage_allreduce(8, PAPER_BROADWELL, 10**6)
        adv64 = cost_advantage_allreduce(64, PAPER_BROADWELL, 10**6)
        assert adv64 > adv8 > 0

    def test_breakeven_condition(self):
        """hZCCL wins under paper rates (HPR < DPR + CPT) and the breakeven
        threshold flips the sign of the large-N advantage."""
        assert PAPER_BROADWELL.hpr_s_per_byte < hzccl_breakeven_hpr(PAPER_BROADWELL)
        from dataclasses import replace

        losing = replace(
            PAPER_BROADWELL,
            hpr_s_per_byte=hzccl_breakeven_hpr(PAPER_BROADWELL) * 2,
            op_overhead_s=0.0,
        )
        assert cost_advantage_allreduce(512, losing, 10**6) < 0

    def test_matches_cost_model_compute_buckets(self):
        """The count identities must agree with the §III-C model's compute
        buckets (network excluded)."""
        from dataclasses import replace

        from repro.core.cost_model import model_hzccl_allreduce
        from repro.runtime.network import NetworkModel

        n, total = 16, 16 * 10**6
        net = NetworkModel(latency_s=1e-9, bandwidth_Bps=1e15)  # ~free network
        # zero per-op overhead: the model batches the fused Allgather's
        # decompression into one invocation, which the pure counts do not
        # distinguish — with overhead off the identities are exact
        rates = replace(PAPER_BROADWELL, op_overhead_s=0.0)
        bd = model_hzccl_allreduce(n, total, rates, net)
        counts = allreduce_counts(n, "hzccl")
        assert bd.doc_time == pytest.approx(counts.cost(rates, total / n), rel=1e-6)


class TestErrorBounds:
    def test_mpi_exact(self):
        eb = error_bounds(8, 1e-4, "mpi")
        assert eb.max_error == 0.0

    def test_hzccl_linear_in_n(self):
        eb = error_bounds(8, 1e-4, "hzccl")
        assert eb.max_error == pytest.approx(8e-4)
        assert eb.rms_estimate == pytest.approx(1e-4 * np.sqrt(8 / 3))

    def test_ccoll_worse_worst_case(self):
        hz = error_bounds(16, 1e-4, "hzccl")
        cc = error_bounds(16, 1e-4, "ccoll")
        assert cc.max_error > hz.max_error

    def test_unknown_kernel(self):
        with pytest.raises(ValueError):
            error_bounds(4, 1e-4, "nccl")

    def test_monte_carlo_validation(self, rng, fast_network):
        """Functional runs respect the bounds; RMS estimates land within a
        small factor of measurement."""
        from repro.collectives import hzccl_allreduce
        from repro.core.config import CollectiveConfig
        from repro.runtime.cluster import SimCluster

        n, eb = 8, 1e-3
        local = [rng.normal(0, 1, 8000).astype(np.float32) for _ in range(n)]
        exact = np.sum(np.stack(local).astype(np.float64), axis=0)
        config = CollectiveConfig(error_bound=eb, network=fast_network)
        res = hzccl_allreduce(SimCluster(n, network=fast_network), local, config)
        err = res.outputs[0].astype(np.float64) - exact
        bounds = error_bounds(n, eb, "hzccl")
        assert np.abs(err).max() <= bounds.max_error * 1.001
        measured_rms = float(np.sqrt(np.mean(err**2)))
        assert 0.3 * bounds.rms_estimate < measured_rms < 1.7 * bounds.rms_estimate
