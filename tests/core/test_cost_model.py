"""Unit tests for the §III-C analytic cost model."""

import pytest

from repro.core.cost_model import (
    PAPER_BROADWELL,
    CostRates,
    matched_network,
    model_ccoll_allreduce,
    model_ccoll_reduce_scatter,
    model_hzccl_allreduce,
    model_hzccl_reduce,
    model_hzccl_reduce_scatter,
    model_mpi_allreduce,
    model_mpi_reduce_scatter,
)
from repro.runtime.network import NetworkModel

NET = NetworkModel(latency_s=1e-6, bandwidth_Bps=1e9, congestion_per_log2=0.0)
RATES = CostRates(
    cpr_s_per_byte=1e-9,
    dpr_s_per_byte=5e-10,
    hpr_s_per_byte=2e-10,
    cpt_s_per_byte=1e-10,
    ratio=10.0,
    op_overhead_s=0.0,
)


class TestFormulas:
    """Hand-computed expectations for tiny cases."""

    def test_mpi_reduce_scatter(self):
        n, total = 4, 4000
        bd = model_mpi_reduce_scatter(n, total, RATES, NET)
        block = 1000
        assert bd.buckets["CPT"] == pytest.approx(3 * block * 1e-10)
        assert bd.buckets["MPI"] == pytest.approx(3 * NET.transfer_time(block, n))

    def test_ccoll_reduce_scatter_counts(self):
        n, total = 4, 4000
        bd = model_ccoll_reduce_scatter(n, total, RATES, NET)
        block = 1000
        assert bd.buckets["CPR"] == pytest.approx(3 * block * 1e-9)
        assert bd.buckets["DPR"] == pytest.approx(3 * block * 5e-10)
        assert bd.buckets["CPT"] == pytest.approx(3 * block * 1e-10)

    def test_hzccl_reduce_scatter_counts(self):
        """N·CPR + (N−1)·HPR + 1·DPR — the paper's §III-C1 total."""
        n, total = 4, 4000
        bd = model_hzccl_reduce_scatter(n, total, RATES, NET)
        block = 1000
        assert bd.buckets["CPR"] == pytest.approx(4 * block * 1e-9)
        assert bd.buckets["HPR"] == pytest.approx(3 * block * 2e-10)
        assert bd.buckets["DPR"] == pytest.approx(1 * block * 5e-10)

    def test_hzccl_allreduce_counts(self):
        n, total = 4, 4000
        bd = model_hzccl_allreduce(n, total, RATES, NET)
        block = 1000
        assert bd.buckets["CPR"] == pytest.approx(4 * block * 1e-9)
        assert bd.buckets["HPR"] == pytest.approx(3 * block * 2e-10)
        assert bd.buckets["DPR"] == pytest.approx(3 * block * 5e-10)

    def test_ccoll_allreduce_counts(self):
        """N·CPR + 2(N−1)·DPR + (N−1)·CPT (§III-C2)."""
        n, total = 4, 4000
        bd = model_ccoll_allreduce(n, total, RATES, NET)
        block = 1000
        assert bd.buckets["CPR"] == pytest.approx(4 * block * 1e-9)
        assert bd.buckets["DPR"] == pytest.approx(6 * block * 5e-10)

    def test_compressed_transfers(self):
        n, total = 4, 40_000
        cc = model_ccoll_reduce_scatter(n, total, RATES, NET)
        mpi = model_mpi_reduce_scatter(n, total, RATES, NET)
        # 10× smaller messages ⇒ MPI bucket strictly smaller
        assert cc.buckets["MPI"] < mpi.buckets["MPI"]

    def test_total_is_bucket_sum(self):
        bd = model_hzccl_allreduce(8, 10**6, RATES, NET)
        assert bd.total_time == pytest.approx(sum(bd.buckets.values()))

    def test_hzccl_reduce_direct_counts(self):
        """CPR on the full vector + incast + fused N-way HPR + one DPR."""
        n, total = 4, 4000
        bd = model_hzccl_reduce(n, total, RATES, NET)
        assert bd.buckets["CPR"] == pytest.approx(total * 1e-9)
        assert bd.buckets["HPR"] == pytest.approx(
            total * RATES.fused_hpr_s_per_byte(n)
        )
        assert bd.buckets["DPR"] == pytest.approx(total * 5e-10)
        assert bd.buckets["MPI"] == pytest.approx(
            3 * NET.transfer_time(int(total / RATES.ratio), n)
        )

    def test_fused_hpr_beats_pairwise_fold_charge(self):
        """The fused charge grows like k·IFE + FE, the fold like (k−1)·HPR."""
        for k in (2, 4, 16):
            fused = RATES.fused_hpr_s_per_byte(k)
            fold = (k - 1) * RATES.hpr_s_per_byte
            assert fused <= fold * 1.0001, k
        assert RATES.fused_hpr_s_per_byte(16) < 15 * RATES.hpr_s_per_byte / 2


class TestPaperShapes:
    """The orderings the paper's figures report, under its own rates."""

    @pytest.mark.parametrize("n", [8, 64, 512])
    @pytest.mark.parametrize("mt", [False, True])
    def test_hzccl_beats_ccoll_beats_mpi(self, n, mt):
        from repro.runtime.network import OMNIPATH_100G

        total = 646_000_000
        mpi = model_mpi_allreduce(n, total, PAPER_BROADWELL, OMNIPATH_100G, mt).total_time
        cc = model_ccoll_allreduce(n, total, PAPER_BROADWELL, OMNIPATH_100G, mt).total_time
        hz = model_hzccl_allreduce(n, total, PAPER_BROADWELL, OMNIPATH_100G, mt).total_time
        assert hz < cc
        if n >= 64 or mt:
            assert cc < mpi

    def test_speedup_grows_with_message_size(self):
        from repro.runtime.network import OMNIPATH_100G

        speedups = []
        for total in (10**7, 10**8, 6 * 10**8):
            mpi = model_mpi_allreduce(64, total, PAPER_BROADWELL, OMNIPATH_100G, True)
            hz = model_hzccl_allreduce(64, total, PAPER_BROADWELL, OMNIPATH_100G, True)
            speedups.append(mpi.total_time / hz.total_time)
        assert speedups == sorted(speedups)

    def test_reduce_scatter_speedup_dips_at_scale(self):
        """Fig. 10: speedup rises, peaks, then declines toward 512 nodes."""
        from repro.runtime.network import OMNIPATH_100G

        total = 646_000_000
        speedups = {}
        for n in (8, 128, 512):
            mpi = model_mpi_reduce_scatter(n, total, PAPER_BROADWELL, OMNIPATH_100G, True)
            hz = model_hzccl_reduce_scatter(n, total, PAPER_BROADWELL, OMNIPATH_100G, True)
            speedups[n] = mpi.total_time / hz.total_time
        assert speedups[128] > speedups[8]
        assert speedups[512] < speedups[128]

    def test_multithread_faster(self):
        from repro.runtime.network import OMNIPATH_100G

        st = model_hzccl_allreduce(64, 10**8, PAPER_BROADWELL, OMNIPATH_100G, False)
        mt = model_hzccl_allreduce(64, 10**8, PAPER_BROADWELL, OMNIPATH_100G, True)
        assert mt.total_time < st.total_time


class TestRates:
    def test_scaled_divides_compute_only(self):
        mt = RATES.scaled(4.0)
        assert mt.cpr_s_per_byte == RATES.cpr_s_per_byte / 4
        assert mt.ife_s_per_byte == RATES.ife_s_per_byte / 4
        assert mt.fe_s_per_byte == RATES.fe_s_per_byte / 4
        assert mt.ratio == RATES.ratio
        assert mt.op_overhead_s == RATES.op_overhead_s

    def test_derived_split_preserves_pairwise_charge(self):
        """Defaults keep the legacy pairwise charge: fused(2) == HPR."""
        assert RATES.fused_hpr_s_per_byte(2) == pytest.approx(
            RATES.hpr_s_per_byte
        )

    def test_explicit_split_used_verbatim(self):
        rates = CostRates(1e-9, 1e-9, 1e-9, 1e-9, 10.0,
                          ife_s_per_byte=2e-10, fe_s_per_byte=3e-10)
        assert rates.fused_hpr_s_per_byte(5) == pytest.approx(5 * 2e-10 + 3e-10)

    def test_measure_returns_positive_rates(self, smooth_data):
        half = smooth_data[: smooth_data.size // 2]
        rates = CostRates.measure(half, half[::-1].copy(), 1e-4, repeats=1)
        assert rates.cpr_s_per_byte > 0
        assert rates.dpr_s_per_byte > 0
        assert rates.hpr_s_per_byte > 0
        assert rates.ife_s_per_byte > 0
        assert rates.fe_s_per_byte > 0
        assert rates.ratio > 1

    def test_validation(self):
        with pytest.raises(ValueError):
            CostRates(0, 1, 1, 1, 1)
        with pytest.raises(ValueError):
            CostRates(1, 1, 1, 1, 0)

    def test_matched_network_scales_bandwidth(self):
        slow = CostRates(
            cpr_s_per_byte=PAPER_BROADWELL.cpr_s_per_byte * 10,
            dpr_s_per_byte=1e-9,
            hpr_s_per_byte=1e-9,
            cpt_s_per_byte=1e-9,
            ratio=5,
        )
        net = matched_network(NET, slow)
        assert net.bandwidth_Bps == pytest.approx(NET.bandwidth_Bps / 10)

    def test_matched_network_rejects_absurd_scale(self):
        absurd = CostRates(1e3, 1, 1, 1, 1)  # 1000 s per byte
        with pytest.raises(ValueError):
            matched_network(NET, absurd)
