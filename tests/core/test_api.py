"""Tests for the HZCCL facade."""

import numpy as np
import pytest

from repro import HZCCL
from repro.core.config import CollectiveConfig


@pytest.fixture()
def lib(fast_network):
    return HZCCL(CollectiveConfig(error_bound=1e-4, network=fast_network))


@pytest.fixture()
def data(rng):
    return [np.cumsum(rng.normal(0, 0.05, 5003)).astype(np.float32) for _ in range(4)]


class TestCompressionSurface:
    def test_compress_uses_config_eb(self, lib, smooth_data):
        field = lib.compress(smooth_data)
        assert field.error_bound == 1e-4

    def test_compress_explicit_eb(self, lib, smooth_data):
        assert lib.compress(smooth_data, abs_eb=1e-2).error_bound == 1e-2

    def test_roundtrip(self, lib, smooth_data):
        out = lib.decompress(lib.compress(smooth_data))
        assert np.abs(out - smooth_data).max() <= 1e-4 * 1.01

    def test_homomorphic_sum(self, lib, smooth_data):
        cx = lib.compress(smooth_data)
        total = lib.homomorphic_sum(cx, cx)
        assert np.abs(lib.decompress(total) - 2 * smooth_data).max() <= 2.1e-4


class TestCollectives:
    def test_allreduce_default_kernel(self, lib, data):
        res = lib.allreduce(data)
        exact = np.sum(np.stack(data).astype(np.float64), axis=0)
        assert np.abs(res.outputs[0].astype(np.float64) - exact).max() <= 5e-4

    @pytest.mark.parametrize("kernel", ["hzccl", "ccoll", "mpi"])
    def test_all_kernels_agree(self, lib, data, kernel):
        res = lib.allreduce(data, kernel=kernel)
        exact = np.sum(np.stack(data).astype(np.float64), axis=0)
        assert np.abs(res.outputs[0].astype(np.float64) - exact).max() <= 1e-3

    @pytest.mark.parametrize("kernel", ["hzccl", "ccoll", "mpi"])
    def test_reduce_scatter_kernels(self, lib, data, kernel):
        res = lib.reduce_scatter(data, kernel=kernel)
        assert len(res.outputs) == len(data)

    def test_unknown_kernel(self, lib, data):
        with pytest.raises(ValueError, match="kernel"):
            lib.allreduce(data, kernel="nccl")
        with pytest.raises(ValueError, match="kernel"):
            lib.reduce_scatter(data, kernel="nccl")

    def test_rank_count_from_input(self, lib, rng):
        data = [rng.normal(0, 1, 1000).astype(np.float32) for _ in range(6)]
        res = lib.reduce_scatter(data)
        assert len(res.outputs) == 6


class TestRootedFacade:
    def test_reduce_to_root(self, lib, data):
        res = lib.reduce(data, root=1)
        exact = np.sum(np.stack(data).astype(np.float64), axis=0)
        assert res.outputs[0] is None
        assert np.abs(res.outputs[1].astype(np.float64) - exact).max() <= 5e-4

    def test_reduce_mpi_kernel(self, lib, data):
        res = lib.reduce(data, kernel="mpi")
        exact = np.sum(np.stack(data).astype(np.float64), axis=0)
        assert np.abs(res.outputs[0].astype(np.float64) - exact).max() <= 1e-3

    def test_reduce_direct_kernel_matches_ring(self, lib, data):
        """Fused k-way schedule produces the same root result as the ring."""
        direct = lib.reduce(data, kernel="hzccl-direct")
        ring = lib.reduce(data, kernel="hzccl")
        np.testing.assert_array_equal(direct.outputs[0], ring.outputs[0])
        assert direct.outputs[1] is None
        assert direct.pipeline_stats.fused_calls == 1
        assert direct.pipeline_stats.mean_fanin == len(data)

    def test_reduce_rejects_ccoll(self, lib, data):
        with pytest.raises(ValueError):
            lib.reduce(data, kernel="ccoll")

    def test_bcast(self, lib, smooth_data):
        res = lib.bcast(smooth_data, n_ranks=4)
        np.testing.assert_array_equal(res.outputs[0], smooth_data)
        for out in res.outputs[1:]:
            assert np.abs(out - smooth_data).max() <= 1e-4 * 1.01

    def test_bcast_mpi_exact(self, lib, smooth_data):
        res = lib.bcast(smooth_data, n_ranks=3, kernel="mpi")
        for out in res.outputs:
            np.testing.assert_array_equal(out, smooth_data)

    def test_bcast_rejects_unknown(self, lib, smooth_data):
        with pytest.raises(ValueError):
            lib.bcast(smooth_data, n_ranks=3, kernel="nccl")
