"""Tests for the higher-level homomorphic operations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.common import dequantize, quantize
from repro.compression.fzlight import FZLight
from repro.homomorphic import (
    difference_energy,
    linear_combination,
    mean_of,
    supported_ops,
)

EB = 1e-3


@pytest.fixture()
def fields(rng, compressor):
    data = [rng.normal(0, 1, 4003).astype(np.float32) for _ in range(4)]
    return data, [compressor.compress(x, abs_eb=EB) for x in data]


class TestLinearCombination:
    def test_matches_integer_oracle(self, fields, compressor):
        data, cf = fields
        weights = [1, -2, 3, 5]
        out = compressor.decompress(linear_combination(cf, weights))
        oracle = dequantize(
            sum(w * quantize(x, EB).astype(np.int64) for w, x in zip(weights, data)),
            EB,
        )
        np.testing.assert_array_equal(out, oracle)

    def test_zero_weights(self, fields, compressor):
        _, cf = fields
        out = compressor.decompress(linear_combination(cf, [0, 0, 0, 0]))
        assert (out == 0).all()

    def test_length_mismatch(self, fields):
        _, cf = fields
        with pytest.raises(ValueError, match="same length"):
            linear_combination(cf, [1, 2])

    def test_empty(self):
        with pytest.raises(ValueError):
            linear_combination([], [])

    @given(weights=st.lists(st.integers(-5, 5), min_size=3, max_size=3))
    @settings(max_examples=25, deadline=None)
    def test_weights_property(self, weights):
        rng = np.random.default_rng(11)
        comp = FZLight(n_threadblocks=3)
        data = [rng.normal(0, 1, 600).astype(np.float32) for _ in range(3)]
        cf = [comp.compress(x, abs_eb=EB) for x in data]
        out = comp.decompress(linear_combination(cf, weights))
        oracle = dequantize(
            sum(w * quantize(x, EB).astype(np.int64) for w, x in zip(weights, data)),
            EB,
        )
        np.testing.assert_array_equal(out, oracle)


class TestMean:
    def test_exact_mean(self, fields):
        data, cf = fields
        mean = mean_of(cf)
        oracle = dequantize(
            sum(quantize(x, EB).astype(np.int64) for x in data), EB / len(data)
        )
        np.testing.assert_array_equal(mean, oracle)

    def test_close_to_float_mean(self, fields):
        data, cf = fields
        mean = mean_of(cf)
        float_mean = np.mean(np.stack(data).astype(np.float64), axis=0)
        # each input contributes ≤ eb, the mean divides by N ⇒ ≤ eb total
        assert np.abs(mean - float_mean).max() <= EB * 1.001

    def test_single_field(self, fields, compressor):
        data, cf = fields
        np.testing.assert_array_equal(
            mean_of([cf[0]]), compressor.decompress(cf[0])
        )

    def test_empty(self):
        with pytest.raises(ValueError):
            mean_of([])


class TestDifferenceEnergy:
    def test_zero_for_identical(self, fields):
        _, cf = fields
        assert difference_energy(cf[0], cf[0]) == 0.0

    def test_matches_decompressed_norm(self, fields, compressor):
        _, cf = fields
        energy = difference_energy(cf[0], cf[1])
        a = compressor.decompress(cf[0]).astype(np.float64)
        b = compressor.decompress(cf[1]).astype(np.float64)
        assert energy == pytest.approx(float(np.sum((a - b) ** 2)), rel=1e-5)

    def test_symmetric(self, fields):
        _, cf = fields
        assert difference_energy(cf[0], cf[1]) == pytest.approx(
            difference_energy(cf[1], cf[0])
        )


class TestSupportedOps:
    def test_linear_supported_nonlinear_not(self):
        ops = supported_ops()
        assert ops["sum"] is True
        assert ops["min"] is False
        assert ops["max"] is False
        assert ops["prod"] is False


class TestNDGuard:
    def test_mean_of_rejects_nd_streams(self):
        from repro.compression import FZLightND

        vol = np.ones((8, 8, 8), dtype=np.float32)
        field = FZLightND().compress(vol, abs_eb=1e-3)
        with pytest.raises(ValueError, match="1-D"):
            mean_of([field, field])
