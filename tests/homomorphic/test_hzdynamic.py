"""Unit + property tests for the hZ-dynamic homomorphic engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.compression.common import dequantize, quantize
from repro.compression.fzlight import FZLight
from repro.homomorphic.hzdynamic import HZDynamic, PipelineStats, homomorphic_sum


def exact_sum(x, y, eb):
    """Ground truth: dequantised sum of the two operands' codes."""
    return dequantize(
        quantize(x, eb).astype(np.int64) + quantize(y, eb).astype(np.int64), eb
    )


class TestAddExactness:
    @pytest.mark.parametrize("n", [1, 32, 33, 1000, 50_011])
    def test_matches_integer_oracle(self, compressor, engine, rng, n):
        x = np.cumsum(rng.normal(0, 0.1, n)).astype(np.float32)
        y = np.cumsum(rng.normal(0, 0.1, n)).astype(np.float32)
        eb = 1e-3
        csum = engine.add(compressor.compress(x, abs_eb=eb), compressor.compress(y, abs_eb=eb))
        np.testing.assert_array_equal(compressor.decompress(csum), exact_sum(x, y, eb))

    def test_no_additional_error(self, compressor, engine, smooth_data):
        """§III-B4: the homomorphic sum is within 2·eb of the float sum —
        only the original per-operand quantisation error, nothing extra."""
        eb = 1e-4
        x, y = smooth_data, smooth_data[::-1].copy()
        csum = engine.add(
            compressor.compress(x, abs_eb=eb), compressor.compress(y, abs_eb=eb)
        )
        err = np.abs(
            compressor.decompress(csum).astype(np.float64)
            - (x.astype(np.float64) + y.astype(np.float64))
        ).max()
        assert err <= 2 * eb * 1.001

    def test_commutative(self, compressor, engine, rough_data):
        eb = 1e-3
        ca = compressor.compress(rough_data, abs_eb=eb)
        cb = compressor.compress(rough_data[::-1].copy(), abs_eb=eb)
        ab = engine.add(ca, cb)
        ba = engine.add(cb, ca)
        assert ab.to_bytes() == ba.to_bytes()

    def test_associative(self, compressor, engine, rng):
        eb = 1e-3
        fields = [
            compressor.compress(
                np.cumsum(rng.normal(0, 0.1, 5000)).astype(np.float32), abs_eb=eb
            )
            for _ in range(3)
        ]
        left = engine.add(engine.add(fields[0], fields[1]), fields[2])
        right = engine.add(fields[0], engine.add(fields[1], fields[2]))
        assert left.to_bytes() == right.to_bytes()

    def test_zero_identity(self, compressor, engine, smooth_data):
        eb = 1e-4
        cx = compressor.compress(smooth_data, abs_eb=eb)
        zero = compressor.compress(np.zeros_like(smooth_data), abs_eb=eb)
        total = engine.add(cx, zero)
        np.testing.assert_array_equal(
            compressor.decompress(total), compressor.decompress(cx)
        )

    def test_output_is_valid_field(self, compressor, engine, smooth_data):
        eb = 1e-4
        cx = compressor.compress(smooth_data, abs_eb=eb)
        out = engine.add(cx, cx)
        out.validate()

    def test_serialised_output_roundtrips(self, compressor, engine, smooth_data):
        from repro.compression.format import from_bytes

        cx = compressor.compress(smooth_data, abs_eb=1e-4)
        out = engine.add(cx, cx)
        again = from_bytes(out.to_bytes())
        np.testing.assert_array_equal(
            compressor.decompress(again), compressor.decompress(out)
        )


class TestIncompatibleOperands:
    def test_different_length(self, compressor, engine):
        a = compressor.compress(np.ones(100, dtype=np.float32), abs_eb=1e-4)
        b = compressor.compress(np.ones(101, dtype=np.float32), abs_eb=1e-4)
        with pytest.raises(ValueError, match="compatible"):
            engine.add(a, b)

    def test_different_eb(self, compressor, engine):
        data = np.ones(100, dtype=np.float32)
        a = compressor.compress(data, abs_eb=1e-4)
        b = compressor.compress(data, abs_eb=1e-3)
        with pytest.raises(ValueError, match="compatible"):
            engine.add(a, b)

    def test_different_geometry(self, engine):
        data = np.sin(np.arange(500, dtype=np.float32))
        a = FZLight(n_threadblocks=2).compress(data, abs_eb=1e-4)
        b = FZLight(n_threadblocks=3).compress(data, abs_eb=1e-4)
        with pytest.raises(ValueError, match="compatible"):
            engine.add(a, b)


class TestPipelineSelection:
    def test_both_constant_pipeline1(self, compressor, engine):
        zero = np.zeros(10_000, dtype=np.float32)
        cz = compressor.compress(zero, abs_eb=1e-4)
        engine.reset_stats()
        engine.add(cz, cz)
        assert engine.stats.counts[0] == engine.stats.total
        assert engine.stats.total > 0

    def test_one_sided_pipeline2(self, compressor, engine, rough_data):
        zero = np.zeros_like(rough_data)
        cz = compressor.compress(zero, abs_eb=1e-3)
        cr = compressor.compress(rough_data, abs_eb=1e-3)
        engine.reset_stats()
        engine.add(cz, cr)  # first constant, second not → pipeline 2
        pct = engine.stats.percentages
        assert pct[1] > 90

    def test_one_sided_pipeline3(self, compressor, engine, rough_data):
        zero = np.zeros_like(rough_data)
        cz = compressor.compress(zero, abs_eb=1e-3)
        cr = compressor.compress(rough_data, abs_eb=1e-3)
        engine.reset_stats()
        engine.add(cr, cz)
        pct = engine.stats.percentages
        assert pct[2] > 90

    def test_both_rough_pipeline4(self, compressor, engine, rough_data):
        cr = compressor.compress(rough_data, abs_eb=1e-3)
        engine.reset_stats()
        engine.add(cr, cr)
        pct = engine.stats.percentages
        assert pct[3] > 90

    def test_stats_accumulate_across_calls(self, compressor, engine, rough_data):
        cr = compressor.compress(rough_data, abs_eb=1e-3)
        engine.reset_stats()
        engine.add(cr, cr)
        one = engine.stats.total
        engine.add(cr, cr)
        assert engine.stats.total == 2 * one

    def test_stats_disabled(self, compressor, rough_data):
        eng = HZDynamic(collect_stats=False)
        cr = compressor.compress(rough_data, abs_eb=1e-3)
        eng.add(cr, cr)
        assert eng.stats.total == 0

    def test_percentages_sum_to_100(self, compressor, engine, sparse_data):
        engine.reset_stats()
        cs = compressor.compress(sparse_data, abs_eb=1e-3)
        # same geometry: compress same-length data
        engine.add(cs, compressor.compress(np.zeros_like(sparse_data), abs_eb=1e-3))
        assert engine.stats.percentages.sum() == pytest.approx(100.0)


class TestLinearExtensions:
    def test_scale_by_two(self, compressor, engine, smooth_data):
        eb = 1e-4
        cx = compressor.compress(smooth_data, abs_eb=eb)
        doubled = engine.scale(cx, 2)
        np.testing.assert_array_equal(
            compressor.decompress(doubled),
            dequantize(quantize(smooth_data, eb).astype(np.int64) * 2, eb),
        )

    def test_scale_by_one_is_copy(self, compressor, engine, smooth_data):
        cx = compressor.compress(smooth_data, abs_eb=1e-4)
        out = engine.scale(cx, 1)
        assert out.to_bytes() == cx.to_bytes()

    def test_scale_by_zero(self, compressor, engine, smooth_data):
        cx = compressor.compress(smooth_data, abs_eb=1e-4)
        out = engine.scale(cx, 0)
        assert (compressor.decompress(out) == 0).all()

    def test_scale_rejects_fractional(self, compressor, engine, smooth_data):
        cx = compressor.compress(smooth_data, abs_eb=1e-4)
        with pytest.raises(ValueError, match="integer"):
            engine.scale(cx, 0.5)

    def test_subtract_self_is_zero(self, compressor, engine, smooth_data):
        cx = compressor.compress(smooth_data, abs_eb=1e-4)
        diff = engine.subtract(cx, cx)
        assert (compressor.decompress(diff) == 0).all()

    def test_subtract_matches_oracle(self, compressor, engine, rng):
        eb = 1e-3
        x = rng.normal(0, 1, 3000).astype(np.float32)
        y = rng.normal(0, 1, 3000).astype(np.float32)
        diff = engine.subtract(
            compressor.compress(x, abs_eb=eb), compressor.compress(y, abs_eb=eb)
        )
        oracle = dequantize(
            quantize(x, eb).astype(np.int64) - quantize(y, eb).astype(np.int64), eb
        )
        np.testing.assert_array_equal(compressor.decompress(diff), oracle)


class TestReduce:
    def test_reduce_many(self, compressor, engine, rng):
        eb = 1e-3
        arrays_ = [rng.normal(0, 1, 2000).astype(np.float32) for _ in range(6)]
        fields = [compressor.compress(a, abs_eb=eb) for a in arrays_]
        total = engine.reduce(fields)
        oracle = dequantize(
            sum(quantize(a, eb).astype(np.int64) for a in arrays_), eb
        )
        np.testing.assert_array_equal(compressor.decompress(total), oracle)

    def test_reduce_single(self, compressor, engine, smooth_data):
        cx = compressor.compress(smooth_data, abs_eb=1e-4)
        assert engine.reduce([cx]) is cx

    def test_reduce_empty_raises(self, engine):
        with pytest.raises(ValueError, match="at least one"):
            engine.reduce([])


class TestModuleHelpers:
    def test_homomorphic_sum(self, compressor, smooth_data):
        cx = compressor.compress(smooth_data, abs_eb=1e-4)
        out = homomorphic_sum(cx, cx)
        np.testing.assert_array_equal(
            compressor.decompress(out),
            dequantize(quantize(smooth_data, 1e-4).astype(np.int64) * 2, 1e-4),
        )

    def test_pipeline_stats_empty(self):
        stats = PipelineStats()
        assert stats.total == 0
        assert (stats.percentages == 0).all()

    def test_pipeline_stats_merge(self):
        a, b = PipelineStats(), PipelineStats()
        a.counts[0] = 3
        b.counts[3] = 1
        a.merge(b)
        assert a.counts[0] == 3 and a.counts[3] == 1


class TestProperties:
    @given(
        x=arrays(np.float32, st.integers(1, 800), elements=st.floats(-50, 50, width=32)),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=50, deadline=None)
    def test_add_matches_integer_oracle_property(self, x, seed):
        rng = np.random.default_rng(seed)
        y = rng.normal(0, 10, x.size).astype(np.float32)
        eb = 1e-2
        comp = FZLight(n_threadblocks=4)
        engine = HZDynamic()
        out = engine.add(comp.compress(x, abs_eb=eb), comp.compress(y, abs_eb=eb))
        np.testing.assert_array_equal(comp.decompress(out), exact_sum(x, y, eb))


class TestReduceSchedules:
    def test_tree_matches_sequential_bytes(self, compressor, engine, rng):
        eb = 1e-3
        fields = [
            compressor.compress(rng.normal(0, 1, 3000).astype(np.float32), abs_eb=eb)
            for _ in range(7)  # odd count exercises the carry leg
        ]
        seq = engine.reduce(list(fields), order="sequential")
        tree = engine.reduce(list(fields), order="tree")
        assert seq.to_bytes() == tree.to_bytes()

    def test_tree_single_field(self, compressor, engine, smooth_data):
        cx = compressor.compress(smooth_data, abs_eb=1e-4)
        assert engine.reduce([cx], order="tree") is cx

    def test_unknown_order(self, compressor, engine, smooth_data):
        cx = compressor.compress(smooth_data, abs_eb=1e-4)
        with pytest.raises(ValueError, match="order"):
            engine.reduce([cx, cx], order="butterfly")

    @given(n=st.integers(2, 9))
    @settings(max_examples=10, deadline=None)
    def test_schedule_equivalence_property(self, n):
        rng = np.random.default_rng(n)
        comp = FZLight(n_threadblocks=3)
        engine = HZDynamic(collect_stats=False)
        fields = [
            comp.compress(rng.normal(0, 1, 500).astype(np.float32), abs_eb=1e-2)
            for _ in range(n)
        ]
        assert (
            engine.reduce(list(fields), order="sequential").to_bytes()
            == engine.reduce(list(fields), order="tree").to_bytes()
        )
