"""Property-based contracts for the fused k-way reduction.

Two load-bearing guarantees under adversarial inputs:

1. **Schedule-freedom** — for randomly generated operand sets the fused
   kernel's output stream is byte-identical to the sequential pairwise
   fold (integer adds are exact, fixed-length encoding deterministic).
2. **Fail-clean** — a corrupted operand can never flow into the engine
   silently: wire-level damage is stopped by the checksum on decode
   (``ValueError``), and in-memory metadata tampering is stopped by the
   compatibility check (``ValueError``).  Wrong bytes are never produced.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.format import from_bytes
from repro.compression.fzlight import FZLight
from repro.homomorphic.hzdynamic import HZDynamic
from repro.runtime.faults import FaultPlan

EB = 1e-3
COMP = FZLight(block_size=8, n_threadblocks=3)
ENGINE = HZDynamic()


def _operands(seed: int, k: int, n: int, p_active: float):
    """k compressed operands over shared geometry, mixed block activity."""
    rng = np.random.default_rng(seed)
    n_blocks = (n + COMP.block_size - 1) // COMP.block_size
    fields = []
    for _ in range(k):
        data = np.zeros(n, dtype=np.float32)
        for b in np.nonzero(rng.random(n_blocks) < p_active)[0]:
            lo = int(b) * COMP.block_size
            hi = min(lo + COMP.block_size, n)
            data[lo:hi] = rng.normal(0, 20 * EB, hi - lo)
        fields.append(COMP.compress(data, abs_eb=EB))
    return fields


def _assert_same_stream(a, b):
    assert a.to_bytes() == b.to_bytes()


class TestFusedMatchesPairwise:
    @given(
        seed=st.integers(0, 2**31),
        k=st.integers(2, 6),
        n=st.integers(17, 200),
        p_active=st.floats(0.0, 1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_byte_identical_to_sequential_fold(self, seed, k, n, p_active):
        fields = _operands(seed, k, n, p_active)
        fused = ENGINE.reduce_fused(fields)
        sequential = ENGINE.reduce(fields, order="sequential")
        _assert_same_stream(fused, sequential)

    @given(
        seed=st.integers(0, 2**31),
        k=st.integers(2, 5),
        weights=st.lists(st.integers(-3, 3), min_size=2, max_size=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_weighted_fold_matches_scaled_pairwise(self, seed, k, weights):
        weights = (weights + [1] * k)[:k]
        fields = _operands(seed, k, 96, 0.6)
        fused = ENGINE.reduce_fused(fields, weights=weights)
        # reference: scale each operand then fold pairwise
        scaled = [
            ENGINE.scale(f, w) if w != 1 else f
            for f, w in zip(fields, weights)
        ]
        acc = scaled[0]
        for nxt in scaled[1:]:
            acc = ENGINE.add(acc, nxt)
        _assert_same_stream(fused, acc)


class TestCorruptedOperandFailsClean:
    @given(
        seed=st.integers(0, 2**31),
        victim=st.integers(0, 3),
        fault_index=st.integers(0, 2**16),
    )
    @settings(max_examples=60, deadline=None)
    def test_wire_corruption_raises_never_wrong_bytes(
        self, seed, victim, fault_index
    ):
        """Corrupt one operand on the wire: decode must raise ValueError.
        If damage were undetected it would flow into reduce_fused and
        produce wrong bytes — the checksum makes that impossible."""
        fields = _operands(seed, 4, 120, 0.7)
        plan = FaultPlan(seed=seed & 0xFFFF)
        blob = fields[victim].to_bytes()
        damaged = plan.corrupt_stream(blob, 0, 1, fault_index)
        assert damaged != blob
        with pytest.raises(ValueError):
            from_bytes(damaged)

    @given(
        seed=st.integers(0, 2**31),
        victim=st.integers(0, 3),
        cut=st.integers(0, 2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_wire_truncation_raises(self, seed, victim, cut):
        fields = _operands(seed, 4, 120, 0.7)
        blob = fields[victim].to_bytes()
        with pytest.raises(ValueError):
            from_bytes(blob[: cut % len(blob)])

    @given(seed=st.integers(0, 2**31), victim=st.integers(0, 3))
    @settings(max_examples=30, deadline=None)
    def test_metadata_tamper_raises_in_engine(self, seed, victim):
        """An operand whose error bound was tampered in memory is not
        homomorphically compatible — the engine must refuse the fold."""
        from dataclasses import replace

        fields = _operands(seed, 4, 120, 0.7)
        fields[victim] = replace(
            fields[victim], error_bound=fields[victim].error_bound * 2
        )
        with pytest.raises(ValueError, match="compatible"):
            ENGINE.reduce_fused(fields)

    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=30, deadline=None)
    def test_geometry_tamper_raises_in_engine(self, seed):
        fields = _operands(seed, 3, 120, 0.7)
        shorter = COMP.compress(
            np.zeros(60, dtype=np.float32), abs_eb=EB
        )
        with pytest.raises(ValueError, match="compatible"):
            ENGINE.reduce_fused([fields[0], fields[1], shorter])
