"""Tests for the static homomorphic baseline (ablation reference)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.compression.fzlight import FZLight
from repro.homomorphic import HZDynamic, StaticHomomorphic


class TestStaticEqualsDynamic:
    """The two pipelines must produce byte-identical compressed sums —
    the dynamic engine is purely a *performance* optimisation."""

    @pytest.mark.parametrize("kind", ["smooth", "rough", "sparse", "zeros"])
    def test_byte_identical(self, compressor, kind, rng):
        n = 20_011
        makers = {
            "smooth": lambda: np.cumsum(rng.normal(0, 0.01, n)).astype(np.float32),
            "rough": lambda: rng.normal(0, 1, n).astype(np.float32),
            "sparse": lambda: np.where(
                np.arange(n) % 700 < 30, rng.normal(0, 1, n), 0.0
            ).astype(np.float32),
            "zeros": lambda: np.zeros(n, dtype=np.float32),
        }
        x, y = makers[kind](), makers[kind]()
        eb = 1e-3
        cx, cy = compressor.compress(x, abs_eb=eb), compressor.compress(y, abs_eb=eb)
        dyn = HZDynamic().add(cx, cy)
        sta = StaticHomomorphic().add(cx, cy)
        assert dyn.to_bytes() == sta.to_bytes()

    def test_reduce_matches(self, compressor, rng):
        fields = [
            compressor.compress(rng.normal(0, 1, 4000).astype(np.float32), abs_eb=1e-3)
            for _ in range(4)
        ]
        dyn = HZDynamic().reduce(list(fields))
        sta = StaticHomomorphic().reduce(list(fields))
        assert dyn.to_bytes() == sta.to_bytes()

    def test_incompatible_raises(self, compressor):
        a = compressor.compress(np.ones(10, dtype=np.float32), abs_eb=1e-4)
        b = compressor.compress(np.ones(11, dtype=np.float32), abs_eb=1e-4)
        with pytest.raises(ValueError, match="compatible"):
            StaticHomomorphic().add(a, b)

    def test_reduce_empty_raises(self):
        with pytest.raises(ValueError):
            StaticHomomorphic().reduce([])

    @given(
        x=arrays(np.float32, st.integers(1, 400), elements=st.floats(-20, 20, width=32))
    )
    @settings(max_examples=40, deadline=None)
    def test_equivalence_property(self, x):
        comp = FZLight(n_threadblocks=3)
        cx = comp.compress(x, abs_eb=1e-2)
        cy = comp.compress((x * 0.5).astype(np.float32), abs_eb=1e-2)
        assert HZDynamic().add(cx, cy).to_bytes() == StaticHomomorphic().add(cx, cy).to_bytes()
