"""Tests for the fused k-way reduction kernel (``HZDynamic.reduce_fused``).

The load-bearing property: the fused kernel is pure execution policy.  For
any operand set it must produce the byte-identical compressed stream the
sequential pairwise fold produces, and record the same fold-equivalent
pipeline statistics — including blocks whose partial sums cancel to a
constant mid-fold and blocks where the dense full-stream strategy engages.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.common import dequantize, quantize
from repro.compression.format import from_bytes
from repro.compression.fzlight import FZLight
from repro.homomorphic.hzdynamic import HZDynamic


def _random_fields(rng, k, n, comp, eb, p_active=0.5, amplitude=10.0):
    """k compressed operands with roughly ``p_active`` non-constant blocks."""
    bs = comp.block_size
    n_blocks = (n + bs - 1) // bs
    fields, arrays_ = [], []
    for _ in range(k):
        data = np.zeros(n, dtype=np.float32)
        for b in np.nonzero(rng.random(n_blocks) < p_active)[0]:
            lo = int(b) * bs
            hi = min(lo + bs, n)
            data[lo:hi] = rng.normal(0, amplitude * eb, hi - lo)
        arrays_.append(data)
        fields.append(comp.compress(data, abs_eb=eb))
    return fields, arrays_


def _assert_identical(a, b):
    np.testing.assert_array_equal(a.code_lengths, b.code_lengths)
    np.testing.assert_array_equal(a.payload, b.payload)
    np.testing.assert_array_equal(a.outliers, b.outliers)


class TestFoldEquivalence:
    @pytest.mark.parametrize("k", [2, 3, 7, 16])
    @pytest.mark.parametrize("p_active", [0.0, 0.1, 0.5, 0.95])
    def test_byte_identity_and_stats(self, rng, k, p_active):
        comp = FZLight(block_size=8, n_threadblocks=3)
        fields, _ = _random_fields(rng, k, 1111, comp, 1e-2, p_active)
        fused_engine = HZDynamic()
        fold_engine = HZDynamic()
        fused = fused_engine.reduce_fused(fields)
        acc = fields[0]
        for nxt in fields[1:]:
            acc = fold_engine.add(acc, nxt)
        _assert_identical(fused, acc)
        # fold-equivalent 4-way pipeline statistics, cancellation included
        np.testing.assert_array_equal(
            fused_engine.stats.counts, fold_engine.stats.counts
        )

    def test_cancellation_mid_fold(self, rng):
        """Partial sums that cancel to constant must count as the fold would."""
        comp = FZLight(block_size=8, n_threadblocks=2)
        base = rng.normal(0, 1, 640).astype(np.float32)
        eb = 1e-2
        plus = comp.compress(base, abs_eb=eb)
        minus = comp.compress(-base, abs_eb=eb)
        tail = comp.compress(rng.normal(0, 1, 640).astype(np.float32), abs_eb=eb)
        fields = [plus, minus, tail]  # plus+minus cancels before tail arrives
        fused_engine = HZDynamic()
        fold_engine = HZDynamic()
        fused = fused_engine.reduce_fused(fields)
        folded = fold_engine.add(fold_engine.add(plus, minus), tail)
        _assert_identical(fused, folded)
        np.testing.assert_array_equal(
            fused_engine.stats.counts, fold_engine.stats.counts
        )
        # the second fold step must have seen pipeline-2 blocks (constant
        # partial + non-constant tail), proving cancellation was tracked
        assert fused_engine.stats.counts[1] > 0

    def test_dense_strategy_engages_and_agrees(self, rng, rough_data):
        """> 75 % accumulate blocks → full-stream pass, same bytes."""
        comp = FZLight()
        eb = 1e-3
        fields = [
            comp.compress(
                rng.normal(0, 1, rough_data.size).astype(np.float32), abs_eb=eb
            )
            for _ in range(5)
        ]
        engine = HZDynamic()
        fused = engine.reduce_fused(fields)
        kway = engine.stats.kway
        assert kway[2] > HZDynamic.DENSE_THRESHOLD * kway.sum()
        seq = HZDynamic(collect_stats=False).reduce(fields, order="sequential")
        _assert_identical(fused, seq)

    def test_all_constant_operands(self, compressor, engine):
        zero = np.zeros(10_000, dtype=np.float32)
        fields = [compressor.compress(zero, abs_eb=1e-4) for _ in range(4)]
        out = engine.reduce_fused(fields)
        assert out.payload.size == 0
        assert (out.code_lengths == 0).all()
        assert (compressor.decompress(out) == 0).all()
        assert engine.stats.kway[0] == engine.stats.kway.sum()

    def test_reduce_orders_agree(self, rng):
        comp = FZLight(block_size=8, n_threadblocks=3)
        fields, _ = _random_fields(rng, 7, 2003, comp, 1e-2)
        engine = HZDynamic(collect_stats=False)
        fused = engine.reduce(fields, order="fused")
        seq = engine.reduce(fields, order="sequential")
        tree = engine.reduce(fields, order="tree")
        assert fused.to_bytes() == seq.to_bytes() == tree.to_bytes()

    @given(seed=st.integers(0, 2**16), k=st.integers(2, 9))
    @settings(max_examples=25, deadline=None)
    def test_fold_equivalence_property(self, seed, k):
        rng = np.random.default_rng(seed)
        comp = FZLight(block_size=8, n_threadblocks=3)
        n = int(rng.integers(1, 900))
        p = float(rng.random())
        fields, _ = _random_fields(rng, k, n, comp, 1e-2, p)
        fused_engine = HZDynamic()
        fold_engine = HZDynamic()
        fused = fused_engine.reduce_fused(fields)
        acc = fields[0]
        for nxt in fields[1:]:
            acc = fold_engine.add(acc, nxt)
        _assert_identical(fused, acc)
        np.testing.assert_array_equal(
            fused_engine.stats.counts, fold_engine.stats.counts
        )


class TestWeights:
    def test_weighted_matches_oracle(self, rng):
        comp = FZLight(n_threadblocks=2)
        eb = 1e-2
        arrays_ = [rng.normal(0, 1, 3001).astype(np.float32) for _ in range(3)]
        fields = [comp.compress(a, abs_eb=eb) for a in arrays_]
        weights = (2, -1, 3)
        out = HZDynamic().reduce_fused(fields, weights=weights)
        oracle = dequantize(
            sum(
                wj * quantize(a, eb).astype(np.int64)
                for wj, a in zip(weights, arrays_)
            ),
            eb,
        )
        np.testing.assert_array_equal(comp.decompress(out), oracle)

    def test_subtract_fuses(self, compressor, engine, rng):
        eb = 1e-3
        x = rng.normal(0, 1, 2000).astype(np.float32)
        y = rng.normal(0, 1, 2000).astype(np.float32)
        cx, cy = compressor.compress(x, abs_eb=eb), compressor.compress(y, abs_eb=eb)
        fused = engine.reduce_fused((cx, cy), weights=(1, -1))
        _assert_identical(fused, engine.subtract(cx, cy))
        unfused = engine.add(cx, engine.scale(cy, -1))
        np.testing.assert_array_equal(
            compressor.decompress(fused), compressor.decompress(unfused)
        )

    def test_zero_weight_drops_operand(self, compressor, engine, rng):
        eb = 1e-3
        x = rng.normal(0, 1, 1500).astype(np.float32)
        y = rng.normal(0, 1, 1500).astype(np.float32)
        cx, cy = compressor.compress(x, abs_eb=eb), compressor.compress(y, abs_eb=eb)
        out = engine.reduce_fused((cx, cy), weights=(1, 0))
        assert out.to_bytes() == cx.to_bytes()

    def test_single_field_weight_one_is_identity(self, compressor, engine, smooth_data):
        cx = compressor.compress(smooth_data, abs_eb=1e-4)
        assert engine.reduce_fused([cx]) is cx

    def test_single_field_weight_scales(self, compressor, engine, smooth_data):
        cx = compressor.compress(smooth_data, abs_eb=1e-4)
        out = engine.reduce_fused([cx], weights=[3])
        assert out.to_bytes() == engine.scale(cx, 3).to_bytes()

    def test_rejects_fractional_weight(self, compressor, engine, smooth_data):
        cx = compressor.compress(smooth_data, abs_eb=1e-4)
        with pytest.raises(ValueError, match="integer"):
            engine.reduce_fused((cx, cx), weights=(1, 0.5))

    def test_rejects_weight_count_mismatch(self, compressor, engine, smooth_data):
        cx = compressor.compress(smooth_data, abs_eb=1e-4)
        with pytest.raises(ValueError, match="weights"):
            engine.reduce_fused((cx, cx), weights=(1,))

    def test_rejects_incompatible(self, compressor, engine):
        a = compressor.compress(np.ones(100, dtype=np.float32), abs_eb=1e-4)
        b = compressor.compress(np.ones(101, dtype=np.float32), abs_eb=1e-4)
        with pytest.raises(ValueError, match="compatible"):
            engine.reduce_fused((a, b))

    def test_rejects_empty(self, engine):
        with pytest.raises(ValueError, match="at least one"):
            engine.reduce_fused(())


class TestKwayStats:
    def test_fanin_bookkeeping(self, compressor, rng):
        engine = HZDynamic()
        fields = [
            compressor.compress(rng.normal(0, 1, 2000).astype(np.float32), abs_eb=1e-3)
            for _ in range(5)
        ]
        engine.reduce_fused(fields)
        engine.add(fields[0], fields[1])
        assert engine.stats.fused_calls == 2
        assert engine.stats.fused_operands == 7
        assert engine.stats.mean_fanin == pytest.approx(3.5)

    def test_kway_partition_covers_all_blocks(self, compressor, engine, sparse_data):
        fields = [compressor.compress(sparse_data, abs_eb=1e-3) for _ in range(3)]
        engine.reduce_fused(fields)
        assert engine.stats.kway.sum() == fields[0].code_lengths.size
        assert engine.stats.kway[0] > 0  # constant blocks exist in sparse data
        assert engine.stats.kway[2] > 0  # the bursts overlap → accumulate

    def test_merge_carries_kway(self):
        from repro.homomorphic.hzdynamic import PipelineStats

        a, b = PipelineStats(), PipelineStats()
        b.kway[1] = 4
        b.fused_calls = 2
        b.fused_operands = 6
        a.merge(b)
        assert a.kway[1] == 4
        assert a.mean_fanin == pytest.approx(3.0)


class TestEmptyPayloadRoundTrips:
    """Fields whose payload is empty (all-constant blocks) through every op."""

    def _empty_field(self, compressor, engine, smooth_data):
        cx = compressor.compress(smooth_data, abs_eb=1e-4)
        return cx, engine.scale(cx, 0)

    def test_scale_by_zero_validates_and_decompresses(
        self, compressor, engine, smooth_data
    ):
        _, zero = self._empty_field(compressor, engine, smooth_data)
        zero.validate()
        assert zero.payload.size == 0
        assert (compressor.decompress(zero) == 0).all()

    def test_empty_field_is_additive_identity(self, compressor, engine, smooth_data):
        cx, zero = self._empty_field(compressor, engine, smooth_data)
        assert engine.add(cx, zero).to_bytes() == cx.to_bytes()
        assert engine.add(zero, cx).to_bytes() == cx.to_bytes()

    def test_empty_fields_reduce(self, compressor, engine, smooth_data):
        _, zero = self._empty_field(compressor, engine, smooth_data)
        out = engine.reduce([zero, zero, zero])
        assert out.payload.size == 0
        assert (compressor.decompress(out) == 0).all()

    def test_empty_field_wire_roundtrip(self, compressor, engine, smooth_data):
        cx, zero = self._empty_field(compressor, engine, smooth_data)
        again = from_bytes(zero.to_bytes())
        again.validate()
        assert engine.add(cx, again).to_bytes() == cx.to_bytes()

    def test_all_constant_compression_roundtrip(self, compressor, engine):
        zero = compressor.compress(np.zeros(5_000, dtype=np.float32), abs_eb=1e-4)
        assert zero.payload.size == 0
        total = engine.reduce_fused([zero, zero])
        assert (compressor.decompress(total) == 0).all()
        again = from_bytes(total.to_bytes())
        assert (compressor.decompress(again) == 0).all()
