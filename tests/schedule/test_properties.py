"""Property-based structural checks on the schedule generators.

A tiny symbolic interpreter replays each schedule with provenance sets
instead of payloads — ``state[rank][block]`` is the frozen set of origin
ranks whose contribution the partial contains.  The executor's semantics
are mirrored exactly (pack snapshots before delivery, stage → pending →
fold), so these invariants hold for any codec:

* **fold-exactly-once** — every fold unions *disjoint* provenance sets
  (a block is never folded twice into the same partial), and each
  reduce-scatter output ends with all ``n`` contributions;
* **ownership conservation** — allgather/doubling rounds only move
  finished blocks; every rank ends holding every block id;
* **no dangling stages** — every staged chunk is consumed by a fold
  (the pipelined ring's lag-one discipline leaves nothing in flight).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.topology import Ring
from repro.schedule import (
    Schedule,
    binomial_bcast,
    direct_reduce,
    flat_gather,
    pipelined_ring_reduce_scatter,
    rabenseifner_allreduce_schedule,
    ring_allgather,
    ring_reduce_scatter,
)

ranks = st.integers(min_value=2, max_value=12)
pow2_ranks = st.sampled_from([2, 4, 8, 16])
chunk_counts = st.integers(min_value=2, max_value=4)


def run_symbolic(schedule: Schedule, state: list[dict]) -> list[dict]:
    """Replay a schedule with provenance-set payloads (executor semantics)."""
    pending: dict = {}
    for rnd in schedule.rounds():
        packed = [
            tuple(state[c.src][b] for b in c.blocks) for c in rnd.comms
        ]
        for comm, items in zip(rnd.comms, packed):
            if comm.action == "fold":
                for b, item in zip(comm.blocks, items):
                    assert not (state[comm.dst][b] & item), (
                        f"double fold of {b} at rank {comm.dst}"
                    )
                    state[comm.dst][b] = state[comm.dst][b] | item
            elif comm.action == "store":
                for b, item in zip(comm.blocks, items):
                    state[comm.dst][b] = item
            elif comm.action == "stage":
                for b, item in zip(comm.blocks, items):
                    assert (comm.dst, b) not in pending, "stage collision"
                    pending[(comm.dst, b)] = item
        for op in rnd.ops:
            if op.kind == "fold":
                for b in op.blocks:
                    item = pending.pop((op.rank, b))
                    assert not (state[op.rank][b] & item), (
                        f"double fold of {b} at rank {op.rank}"
                    )
                    state[op.rank][b] = state[op.rank][b] | item
            elif op.kind == "fold_fused":
                parts = [state[op.rank][b] for b in op.blocks]
                union = frozenset()
                for p in parts:
                    assert not (union & p), "fused fold double-counts"
                    union = union | p
                state[op.rank][op.out] = union
    assert not pending, f"{len(pending)} staged chunks never folded"
    return state


def seed_reduce_scatter(n: int, block_ids) -> list[dict]:
    """Every rank contributes its own share of every block."""
    return [{b: frozenset({i}) for b in block_ids} for i in range(n)]


@given(n=ranks)
@settings(max_examples=25, deadline=None)
def test_ring_reduce_scatter_folds_each_contribution_once(n):
    state = run_symbolic(
        ring_reduce_scatter(n), seed_reduce_scatter(n, range(n))
    )
    everyone = frozenset(range(n))
    ring = Ring(n)
    for i in range(n):
        assert state[i][ring.owned_block(i)] == everyone


@given(n=ranks, chunks=chunk_counts)
@settings(max_examples=25, deadline=None)
def test_pipelined_ring_conserves_and_drains(n, chunks):
    ids = [(b, c) for b in range(n) for c in range(chunks)]
    state = run_symbolic(
        pipelined_ring_reduce_scatter(n, chunks),
        seed_reduce_scatter(n, ids),
    )
    everyone = frozenset(range(n))
    ring = Ring(n)
    for i in range(n):
        for c in range(chunks):
            assert state[i][(ring.owned_block(i), c)] == everyone


@given(n=pow2_ranks)
@settings(max_examples=10, deadline=None)
def test_rabenseifner_ends_fully_reduced_everywhere(n):
    state = run_symbolic(
        rabenseifner_allreduce_schedule(n), seed_reduce_scatter(n, range(n))
    )
    everyone = frozenset(range(n))
    for i in range(n):
        for b in range(n):
            assert state[i][b] == everyone, f"rank {i} block {b}"


@given(n=ranks, chunks=st.integers(min_value=1, max_value=3))
@settings(max_examples=25, deadline=None)
def test_allgather_ownership_conservation(n, chunks):
    ring = Ring(n)
    ids = lambda k: [(k, c) for c in range(chunks)] if chunks > 1 else [k]
    state = [
        {cid: frozenset({i}) for cid in ids(ring.owned_block(i))}
        for i in range(n)
    ]
    state = run_symbolic(ring_allgather(n, chunks=chunks), state)
    owner_of = {ring.owned_block(i): i for i in range(n)}
    for i in range(n):
        for k in range(n):
            for cid in ids(k):
                assert state[i][cid] == frozenset({owner_of[k]}), (
                    f"rank {i} holds a forged copy of block {k}"
                )


@given(n=ranks, root_frac=st.floats(min_value=0.0, max_value=0.999))
@settings(max_examples=25, deadline=None)
def test_rooted_schedules_deliver_everything_to_the_root(n, root_frac):
    root = int(root_frac * n)
    ring = Ring(n)
    state = [{ring.owned_block(i): frozenset({i})} for i in range(n)]
    state = run_symbolic(flat_gather(n, root), state)
    assert {b for b in state[root]} == set(range(n))

    state = [{("vec", i): frozenset({i})} for i in range(n)]
    state = run_symbolic(direct_reduce(n, root), state)
    assert state[root]["fused"] == frozenset(range(n))

    state = [dict() for _ in range(n)]
    state[root]["data"] = frozenset({root})
    state = run_symbolic(binomial_bcast(n, root, deliver=True), state)
    for i in range(n):
        assert state[i]["data"] == frozenset({root})
