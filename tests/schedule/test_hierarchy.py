"""Structural tests for the two-level hierarchical schedule generators.

The provenance interpreter is the key instrument: it runs a schedule
symbolically with ``state[rank][block] = frozenset(contributing ranks)``
— a fold unions the sender's set into the receiver's, a store overwrites
— so full correctness of the index arithmetic (binomial trees, leader
ring, Rabenseifner halving/doubling) reduces to "every rank ends with
the full set on every block", with no kernels or floats involved.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.runtime import (
    DragonflyNetwork,
    FatTreeNetwork,
    NetworkModel,
    NodeMap,
    TorusNetwork,
)
from repro.schedule import (
    INTER_FAMILIES,
    hierarchical_allreduce_schedule,
    select_inter_family,
)

SHAPES = [
    (8, 2), (8, 4), (16, 4), (6, 3), (4, 4),  # regular
    (5, 1),   # one rank per node: pure inter stage
    (1, 1),   # singleton
    (12, 4),  # non-power-of-two node count
]


def _provenance(schedule):
    """Run the schedule symbolically; return state[rank][block] sets."""
    n = schedule.n_ranks
    blocks = sorted(schedule.weights)
    state = [{b: frozenset({i}) for b in blocks} for i in range(n)]
    for rnd in schedule.rounds():
        # rounds are bulk-synchronous: capture sends before applying
        staged = [
            (c.dst, c.blocks, c.action, {b: state[c.src][b] for b in c.blocks})
            for c in rnd.comms
        ]
        for dst, blks, action, payload in staged:
            for b in blks:
                if action == "fold":
                    state[dst][b] = state[dst][b] | payload[b]
                elif action == "store":
                    state[dst][b] = payload[b]
    return state


class TestProvenance:
    @pytest.mark.parametrize("n,rpn", SHAPES)
    def test_ring_reaches_full_set(self, n, rpn):
        nm = NodeMap.regular(n, rpn)
        state = _provenance(hierarchical_allreduce_schedule(nm, "ring"))
        everyone = frozenset(range(n))
        for rank in range(n):
            for b in range(nm.n_nodes):
                assert state[rank][b] == everyone

    @pytest.mark.parametrize("n,rpn", [(16, 4), (8, 1), (32, 8), (4, 4)])
    def test_rabenseifner_reaches_full_set(self, n, rpn):
        nm = NodeMap.regular(n, rpn)
        state = _provenance(
            hierarchical_allreduce_schedule(nm, "rabenseifner")
        )
        everyone = frozenset(range(n))
        for rank in range(n):
            for b in range(nm.n_nodes):
                assert state[rank][b] == everyone

    def test_irregular_nodemap_reaches_full_set(self):
        nm = NodeMap(node_of_rank=(0, 1, 0, 1, 0, 2, 2))
        state = _provenance(hierarchical_allreduce_schedule(nm, "ring"))
        everyone = frozenset(range(7))
        for rank in range(7):
            for b in range(3):
                assert state[rank][b] == everyone


class TestConcurrency:
    """The congestion-law fix: declared flows, never blanket n_ranks."""

    def test_intra_rounds_declare_busiest_node(self):
        nm = NodeMap.regular(64, 8)
        sched = hierarchical_allreduce_schedule(nm, "ring")
        intra = [
            r for phase in sched.phases if phase.slot.startswith("intra")
            for r in phase.rounds
        ]
        assert intra  # both intra-reduce and intra-bcast present
        for rnd in intra:
            assert rnd.link_scale == nm.intra_scale
            # 8-rank binomial tree: 4, 2, 1 sends per node per step
            assert rnd.flows(sched.n_ranks) in (4, 2, 1)

    def test_inter_rounds_declare_one_flow_per_node(self):
        nm = NodeMap.regular(64, 8)
        sched = hierarchical_allreduce_schedule(nm, "ring")
        inter = [
            r for phase in sched.phases if phase.slot.startswith("inter")
            for r in phase.rounds
        ]
        assert inter
        for rnd in inter:
            assert rnd.flows(sched.n_ranks) == nm.n_nodes
            assert rnd.link_scale == 1.0

    def test_no_round_pays_jobwide_congestion(self):
        """On a multi-node map every round's flow count is < n_ranks —
        the whole point of threading concurrency through the IR."""
        nm = NodeMap.regular(64, 8)
        sched = hierarchical_allreduce_schedule(nm, "ring")
        for rnd in sched.rounds():
            if rnd.comms:
                assert rnd.flows(sched.n_ranks) < sched.n_ranks

    def test_inter_rounds_touch_only_leaders(self):
        nm = NodeMap.regular(32, 4)
        sched = hierarchical_allreduce_schedule(nm, "ring")
        leaders = set(nm.leaders())
        for phase in sched.phases:
            if phase.slot.startswith("inter"):
                for rnd in phase.rounds:
                    for c in rnd.comms:
                        assert {c.src, c.dst} <= leaders


class TestDegenerateShapes:
    def test_single_node_has_no_inter_phase(self):
        sched = hierarchical_allreduce_schedule(NodeMap.regular(4, 4))
        assert not any(p.slot.startswith("inter") for p in sched.phases)

    def test_one_rank_per_node_has_no_intra_phases(self):
        sched = hierarchical_allreduce_schedule(NodeMap.regular(5, 1))
        assert not any(p.slot.startswith("intra") for p in sched.phases)

    def test_singleton_is_setup_finalize_only(self):
        sched = hierarchical_allreduce_schedule(NodeMap.regular(1, 1))
        assert [p.slot for p in sched.phases] == ["setup", "finalize"]


class TestValidationAndCaching:
    def test_unknown_inter_family_rejected(self):
        with pytest.raises(ValueError, match="inter-node family"):
            hierarchical_allreduce_schedule(NodeMap.regular(8, 2), "bcube")

    def test_rabenseifner_needs_power_of_two_nodes(self):
        with pytest.raises(ValueError):
            hierarchical_allreduce_schedule(
                NodeMap.regular(12, 4), "rabenseifner"
            )

    def test_schedules_are_memoised_by_value(self):
        a = hierarchical_allreduce_schedule(NodeMap.regular(8, 2), "ring")
        b = hierarchical_allreduce_schedule(NodeMap.regular(8, 2), "ring")
        assert a is b

    def test_block_weights_sum_to_one(self):
        sched = hierarchical_allreduce_schedule(NodeMap.regular(12, 4))
        assert sum(sched.weights.values()) == pytest.approx(1.0)


class TestSelector:
    def test_dragonfly_power_of_two_prefers_rabenseifner(self):
        nm = NodeMap.regular(64, 8)  # 8 nodes
        assert select_inter_family(DragonflyNetwork(), nm) == "rabenseifner"

    def test_dragonfly_irregular_node_count_falls_back_to_ring(self):
        nm = NodeMap.regular(24, 8)  # 3 nodes
        assert select_inter_family(DragonflyNetwork(), nm) == "ring"

    @pytest.mark.parametrize(
        "network",
        [TorusNetwork(), FatTreeNetwork(), NetworkModel()],
        ids=["torus", "fattree", "base"],
    )
    def test_other_fabrics_prefer_ring(self, network):
        assert select_inter_family(network, NodeMap.regular(64, 8)) == "ring"

    def test_single_node_is_ring(self):
        assert (
            select_inter_family(DragonflyNetwork(), NodeMap.regular(8, 8))
            == "ring"
        )

    @given(
        rpn=st.integers(1, 4),
        n_nodes=st.integers(1, 12),
    )
    def test_selector_always_returns_a_buildable_family(self, rpn, n_nodes):
        nm = NodeMap.regular(rpn * n_nodes, rpn)
        for network in (
            DragonflyNetwork(), TorusNetwork(), FatTreeNetwork(),
            NetworkModel(),
        ):
            family = select_inter_family(network, nm)
            assert family in INTER_FAMILIES
            # the chosen family must actually build for this shape
            hierarchical_allreduce_schedule(nm, family)
