"""Regression tests for the schedule-profile cache in the cost model.

The cache maps ``id(schedule)`` → profile for O(1) dry-run lookups.  Two
historical bugs are pinned here:

* the cache used to hold a **strong** reference to every schedule it
  ever profiled, so tuning sweeps over throwaway schedules leaked
  profiles without bound;
* because entries outlived their schedules, a recycled ``id()`` could
  serve a *stale* profile for a brand-new, structurally different
  schedule.

The fix keys the entry by id but holds only a ``weakref`` whose callback
evicts the entry the moment the schedule is collected — before its id
can ever be reused — plus an identity check on lookup.
"""

import gc

import pytest

from repro.core.cost_model import PAPER_BROADWELL
from repro.runtime.network import NetworkModel
from repro.schedule.cost import HZ_REDUCE, PLAIN, _PROFILE_CACHE, schedule_cost
from repro.schedule.ir import CommOp, Phase, Round, Schedule

NET = NetworkModel()


def _throwaway_schedule(n: int, tag: int) -> Schedule:
    """A fresh, uncached schedule object (unlike the memoised generators)."""
    rnd = Round(
        kind="exchange",
        comms=tuple(
            CommOp(src=i, dst=(i + 1) % n, blocks=(i,), action="fold")
            for i in range(n)
        ),
    )
    return Schedule(
        name=f"throwaway-{tag}", n_ranks=n, phases=(Phase("exchange", (rnd,)),)
    ).validate()


def test_entry_evicted_when_schedule_collected():
    sched = _throwaway_schedule(4, tag=0)
    schedule_cost(sched, PLAIN, 1 << 16, PAPER_BROADWELL, NET)
    key = id(sched)
    assert key in _PROFILE_CACHE
    del sched
    gc.collect()
    assert key not in _PROFILE_CACHE


def test_sweep_over_throwaway_schedules_does_not_accumulate():
    gc.collect()
    before = len(_PROFILE_CACHE)
    for tag in range(200):
        schedule_cost(
            _throwaway_schedule(4, tag), PLAIN, 1 << 16, PAPER_BROADWELL, NET
        )
    gc.collect()
    assert len(_PROFILE_CACHE) <= before + 1  # at most the last temporary


def test_recycled_id_never_serves_stale_profile():
    """Same id, different schedule ⇒ different (correct) costs.

    Allocation patterns make genuine id reuse hard to force portably, so
    the test drives the hazard directly: profile schedule A, then make
    the cache believe a structurally different schedule B lives at a
    colliding key.  The identity check must reject the hit."""
    a = _throwaway_schedule(4, tag=1)
    cost_a = schedule_cost(a, PLAIN, 1 << 16, PAPER_BROADWELL, NET)
    b = _throwaway_schedule(8, tag=2)
    cost_b_fresh = schedule_cost(b, PLAIN, 1 << 16, PAPER_BROADWELL, NET)
    # simulate id collision: plant A's entry under B's key
    _PROFILE_CACHE[id(b)] = _PROFILE_CACHE[id(a)]
    try:
        cost_b = schedule_cost(b, PLAIN, 1 << 16, PAPER_BROADWELL, NET)
    finally:
        _PROFILE_CACHE.pop(id(b), None)
        _PROFILE_CACHE.pop(id(a), None)
    assert cost_b.total_time == cost_b_fresh.total_time
    assert cost_b.total_time != cost_a.total_time


def test_profiles_memoised_per_discipline():
    sched = _throwaway_schedule(4, tag=3)
    plain = schedule_cost(sched, PLAIN, 1 << 16, PAPER_BROADWELL, NET)
    hz = schedule_cost(sched, HZ_REDUCE, 1 << 16, PAPER_BROADWELL, NET)
    memo = _PROFILE_CACHE[id(sched)][1]
    assert set(memo) == {"plain", "hz-reduce"}
    # repeat calls reproduce exactly (served from the memo)
    assert (
        schedule_cost(sched, PLAIN, 1 << 16, PAPER_BROADWELL, NET).total_time
        == plain.total_time
    )
    assert (
        schedule_cost(
            sched, HZ_REDUCE, 1 << 16, PAPER_BROADWELL, NET
        ).total_time
        == hz.total_time
    )


def test_rejects_non_positive_bytes():
    sched = _throwaway_schedule(4, tag=4)
    with pytest.raises(ValueError):
        schedule_cost(sched, PLAIN, 0, PAPER_BROADWELL, NET)
