"""Differential harness: the committed tuning table, executed.

For every ``BENCH_tuner.json`` entry at executable scale (n ≤ 16), run
the **tuned pick** and the **best static family** (the entry's
``flat_pick`` — what a placement-free caller would have hand-picked)
functionally on :class:`SimCluster`, on data matching the entry's
roughness class, and assert:

* **results agree** — non-pipelined homomorphic candidates are
  bit-identical to the flat fused hz ring (one absolute-eb quantisation
  per element + exact integer folds ⇒ the schedule changes, the answer
  doesn't); pipelined hz candidates honour the N·eb error contract;
  plain candidates match the exact float64 reference to float32
  associativity;
* **modelled-cost ordering is consistent with the committed document**
  — the pick's cost is the minimum of the per-candidate map, the flat
  pick is the flat argmin, and re-running :func:`tune_point` today
  reproduces the committed entries exactly (cost-model drift cannot
  silently invalidate the table).
"""

import json
import pathlib

import numpy as np
import pytest

from repro.bench.tuner import FABRICS, RANKS_PER_NODE
from repro.collectives import hzccl_allreduce, mpi_allreduce, run_candidate
from repro.core.config import CollectiveConfig
from repro.core.cost_model import PAPER_BROADWELL
from repro.runtime import NodeMap, SimCluster
from repro.schedule.tuner import (
    Candidate,
    TuningKey,
    classify_roughness,
    tune_point,
)

BASELINE = (
    pathlib.Path(__file__).resolve().parents[2] / "BENCH_tuner.json"
)
EXEC_MAX_RANKS = 16
N_ELEMENTS = 4096
EB = 1e-3
CONFIG = CollectiveConfig(error_bound=EB)


def _entries() -> list[dict]:
    points = json.loads(BASELINE.read_text())["points"]
    entries = [p for p in points if p["n_ranks"] <= EXEC_MAX_RANKS]
    assert entries, "no executable-scale entries committed"
    return entries


def _data(n: int, roughness: str) -> list[np.ndarray]:
    """Per-rank data that *actually classifies* as the entry's roughness
    class (asserted below, so the generator can't drift apart from the
    classifier)."""
    rng = np.random.default_rng(0xD1FF)
    if roughness == "smooth":
        data = [
            np.sin(np.linspace(0, 30, N_ELEMENTS) + r).astype(np.float32)
            for r in range(n)
        ]
    else:
        data = [
            rng.normal(0, 1.0, N_ELEMENTS).astype(np.float32)
            for _ in range(n)
        ]
    for a in data:
        assert classify_roughness(a, EB) == roughness
    return data


def _run(slug: str, entry: dict, data: list[np.ndarray]):
    cand = Candidate.parse(slug)
    cluster = SimCluster(
        entry["n_ranks"], network=FABRICS[entry["fabric"]]
    )
    nodemap = (
        NodeMap.regular(entry["n_ranks"], cand.ranks_per_node)
        if cand.hierarchical
        else None
    )
    result = run_candidate(cand, cluster, data, CONFIG, nodemap)
    assert not result.degraded
    return result


def _scenarios() -> list[tuple[str, dict]]:
    """One scenario per distinct (pick, flat_pick, roughness, n) combo —
    entries differing only in size/fabric execute identically at test
    scale, so dedup keeps the sweep fast without losing coverage."""
    seen, out = set(), []
    for p in _entries():
        sig = (p["pick"], p["flat_pick"], p["roughness"], p["n_ranks"])
        if sig in seen:
            continue
        seen.add(sig)
        out.append((f"{p['key']}", p))
    return out


@pytest.mark.parametrize(
    "entry", [p for _, p in _scenarios()], ids=[k for k, _ in _scenarios()]
)
def test_tuned_pick_agrees_with_best_static_family(entry):
    n = entry["n_ranks"]
    data = _data(n, entry["roughness"])
    exact = np.sum(np.stack(data), axis=0, dtype=np.float64).astype(np.float32)

    tuned = _run(entry["pick"], entry, data)
    static = _run(entry["flat_pick"], entry, data)

    # the hz reference: the flat fused ring on the same cluster geometry
    hz_ref = hzccl_allreduce(
        SimCluster(n, network=FABRICS[entry["fabric"]]), data, CONFIG
    )
    assert not hz_ref.degraded
    plain_ref = mpi_allreduce(
        SimCluster(n, network=FABRICS[entry["fabric"]]), data
    )

    bound = (2 * n + 1) * EB
    for result, slug in ((tuned, entry["pick"]), (static, entry["flat_pick"])):
        cand = Candidate.parse(slug)
        for rank, out in enumerate(result.outputs):
            # every candidate respects the end-to-end error contract
            np.testing.assert_allclose(out, exact, atol=bound)
            if cand.codec == "hz" and cand.family != "pipelined":
                # non-pipelined hz: bit-identical to the fused hz ring
                # (same per-element quantisation, exact integer folds)
                assert np.array_equal(out, hz_ref.outputs[rank]), (
                    f"{slug} rank {rank}: hz output not bit-identical"
                )
            elif cand.codec == "plain":
                np.testing.assert_allclose(
                    out, plain_ref.outputs[rank], atol=1e-4
                )

    # both candidates agree with each other within the lossy bound
    for a, b in zip(tuned.outputs, static.outputs):
        np.testing.assert_allclose(a, b, atol=2 * bound)


def test_modelled_cost_ordering_matches_committed_document():
    """pick ≤ every static cost; flat_pick = flat argmin; and today's
    cost model reproduces the committed entries exactly."""
    for p in _entries():
        costs = p["static_costs"]
        assert p["pick_cost_s"] == min(costs.values())
        assert p["pick_cost_s"] <= p["flat_cost_s"]
        flat = {
            s: c for s, c in costs.items()
            if not Candidate.parse(s).hierarchical
        }
        assert p["flat_cost_s"] == min(flat.values())

        key = TuningKey.parse(p["key"])
        nodemap = NodeMap.regular(
            key.n_ranks, min(RANKS_PER_NODE, key.n_ranks)
        )
        _, entry, recomputed = tune_point(
            key.n_ranks,
            p["size_bytes"],
            FABRICS[key.fabric],
            key.roughness,
            PAPER_BROADWELL,
            nodemap,
        )
        assert entry.pick.slug() == p["pick"]
        assert entry.cost_s == p["pick_cost_s"]
        assert recomputed == costs
