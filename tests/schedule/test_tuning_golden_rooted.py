"""Golden-fixture pin of the tuner's rooted-op picks (reduce / bcast).

``fixtures/tuning_golden_rooted.json`` freezes the tuner's decisions for
the rooted ``reduce`` and ``bcast`` ops on a small frozen grid — the
rooted candidate sets are flat (no placement axis), so the grid covers
rank counts, a latency- and a bandwidth-dominated size, two fabrics, and
both roughness classes.

Regenerating after an *intentional* cost-model change::

    PYTHONPATH=src python tests/schedule/test_tuning_golden_rooted.py

then review the printed diff and commit the updated fixture together
with the change that caused it (same policy as ``tuning_golden.json``).
"""

import json
import pathlib

from repro.core.cost_model import PAPER_BROADWELL
from repro.runtime import DragonflyNetwork, TorusNetwork
from repro.schedule.tuner import tune_point

FIXTURE = (
    pathlib.Path(__file__).parent / "fixtures" / "tuning_golden_rooted.json"
)

GOLDEN_OPS = ("reduce", "bcast")
GOLDEN_RANKS = (4, 8, 64)
GOLDEN_SIZES = (64 << 10, 4 << 20)
GOLDEN_FABRICS = {"torus": TorusNetwork(), "dragonfly": DragonflyNetwork()}
GOLDEN_ROUGHNESS = ("smooth", "rough")


def compute_golden() -> dict[str, dict]:
    grid = {}
    for op in GOLDEN_OPS:
        for n in GOLDEN_RANKS:
            for fabric in sorted(GOLDEN_FABRICS):
                for size in GOLDEN_SIZES:
                    for roughness in GOLDEN_ROUGHNESS:
                        key, entry, _ = tune_point(
                            n,
                            size,
                            GOLDEN_FABRICS[fabric],
                            roughness,
                            PAPER_BROADWELL,
                            op=op,
                        )
                        grid[key.canonical()] = entry.as_dict()
    return grid


def test_rooted_tuner_picks_match_golden_fixture():
    golden = json.loads(FIXTURE.read_text())
    computed = compute_golden()
    diff = [
        f"  {k}: golden={golden.get(k)} computed={computed.get(k)}"
        for k in sorted(set(golden) | set(computed))
        if golden.get(k) != computed.get(k)
    ]
    assert not diff, (
        "rooted tuner picks drifted from the golden fixture (intentional "
        "cost-model change? regenerate per the module docstring):\n"
        + "\n".join(diff)
    )


def test_rooted_fixture_covers_both_ops_and_all_codecs():
    golden = json.loads(FIXTURE.read_text())
    ops = {k.split("/", 1)[0] for k in golden}
    assert ops == set(GOLDEN_OPS)
    # the grid must be discriminating: each op picks more than one
    # candidate across the grid (otherwise the fixture pins nothing)
    for op in GOLDEN_OPS:
        picks = {v["pick"] for k, v in golden.items() if k.startswith(op)}
        assert len(picks) > 1, f"{op}: grid never changes its pick ({picks})"


if __name__ == "__main__":  # pragma: no cover — the regen helper
    computed = compute_golden()
    old = json.loads(FIXTURE.read_text()) if FIXTURE.exists() else {}
    for k in sorted(set(old) | set(computed)):
        if old.get(k) != computed.get(k):
            print(f"~ {k}\n    {old.get(k)}\n -> {computed.get(k)}")
    FIXTURE.write_text(
        json.dumps(computed, indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {FIXTURE} ({len(computed)} entries)")
