"""Golden-fixture pin of the tuner's picks on a small frozen grid.

``fixtures/tuning_golden.json`` freezes the tuner's *decisions* — pick,
flat pick, and their exact modelled costs — on a 16-point grid small
enough to recompute in milliseconds.  Any cost-model change that moves a
pick (or even a cost float) fails here loudly, with a per-key diff in
the assertion message, instead of silently reshuffling which schedule
every tuned collective runs.

Regenerating after an *intentional* cost-model change::

    PYTHONPATH=src python tests/schedule/test_tuning_golden.py

then review the printed diff and commit the updated fixture together
with the change that caused it (same policy as ``BENCH_tuner.json``,
which covers the figure-scale grid; this fixture exists so the everyday
tier-1 run catches drift without rebuilding benchmark schedules).
"""

import json
import pathlib

from repro.core.cost_model import PAPER_BROADWELL
from repro.runtime import DragonflyNetwork, NodeMap, TorusNetwork
from repro.schedule.tuner import tune_point

FIXTURE = pathlib.Path(__file__).parent / "fixtures" / "tuning_golden.json"

#: the frozen grid: every executable-scale corner the tuner distinguishes
#: (two rank counts, a latency- and a bandwidth-dominated size, the two
#: congestion-law extremes, both roughness classes).
GOLDEN_RANKS = (4, 8)
GOLDEN_SIZES = (64 << 10, 4 << 20)
GOLDEN_FABRICS = {"torus": TorusNetwork(), "dragonfly": DragonflyNetwork()}
GOLDEN_ROUGHNESS = ("smooth", "rough")
GOLDEN_RANKS_PER_NODE = 4


def compute_golden() -> dict[str, dict]:
    grid = {}
    for n in GOLDEN_RANKS:
        nodemap = NodeMap.regular(n, min(GOLDEN_RANKS_PER_NODE, n))
        for fabric in sorted(GOLDEN_FABRICS):
            for size in GOLDEN_SIZES:
                for roughness in GOLDEN_ROUGHNESS:
                    key, entry, _ = tune_point(
                        n,
                        size,
                        GOLDEN_FABRICS[fabric],
                        roughness,
                        PAPER_BROADWELL,
                        nodemap,
                    )
                    grid[key.canonical()] = entry.as_dict()
    return grid


def test_tuner_picks_match_golden_fixture():
    golden = json.loads(FIXTURE.read_text())
    computed = compute_golden()
    diff = [
        f"  {k}: golden={golden.get(k)} computed={computed.get(k)}"
        for k in sorted(set(golden) | set(computed))
        if golden.get(k) != computed.get(k)
    ]
    assert not diff, (
        "tuner picks drifted from the golden fixture (intentional "
        "cost-model change? regenerate per the module docstring):\n"
        + "\n".join(diff)
    )


if __name__ == "__main__":  # pragma: no cover — the regen helper
    computed = compute_golden()
    old = json.loads(FIXTURE.read_text()) if FIXTURE.exists() else {}
    for k in sorted(set(old) | set(computed)):
        if old.get(k) != computed.get(k):
            print(f"~ {k}\n    {old.get(k)}\n -> {computed.get(k)}")
    FIXTURE.write_text(
        json.dumps(computed, indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {FIXTURE} ({len(computed)} entries)")
