"""Regenerate the cross-family equivalence fixtures.

Run from the repo root::

    PYTHONPATH=src python tests/schedule/make_fixtures.py

The fixtures snapshot every collective family's *healthy-run* outputs (and
bytes-on-wire) at n ∈ {2, 4, 8} ranks.  They were produced by the
pre-schedule-IR implementations (the hand-rolled round loops) and pin the
refactored executor to bit-identical behaviour: any change to delivery
order, fold arithmetic, or quantisation along the data path shows up as a
fixture mismatch, not a silent drift.

Only regenerate when intentionally changing numerical behaviour.
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.collectives import (
    ccoll_allreduce,
    compressed_bcast,
    hzccl_allreduce,
    hzccl_rabenseifner_allreduce,
    hzccl_reduce,
    hzccl_reduce_direct,
    hzccl_reduce_scatter,
    mpi_allreduce,
    mpi_bcast,
    mpi_reduce,
    mpi_reduce_scatter,
    rabenseifner_allreduce,
)
from repro.core.config import CollectiveConfig
from repro.runtime.cluster import SimCluster
from repro.runtime.network import NetworkModel

FIXTURE_DIR = pathlib.Path(__file__).parent / "fixtures"
N_ELEMENTS = 4003
NET = NetworkModel(latency_s=1e-6, bandwidth_Bps=1e9, congestion_per_log2=0.1)
CONFIG = CollectiveConfig(
    error_bound=1e-4, block_size=8, n_threadblocks=3, network=NET
)

#: op name → callable(cluster, per-rank data, config) -> CollectiveResult
OPS = {
    "mpi_reduce_scatter": lambda cl, d, c: mpi_reduce_scatter(cl, d),
    "mpi_allreduce": lambda cl, d, c: mpi_allreduce(cl, d),
    "ccoll_allreduce": ccoll_allreduce,
    "hzccl_reduce_scatter": hzccl_reduce_scatter,
    "hzccl_allreduce": hzccl_allreduce,
    "rabenseifner_allreduce": lambda cl, d, c: rabenseifner_allreduce(cl, d),
    "hzccl_rabenseifner_allreduce": hzccl_rabenseifner_allreduce,
    "mpi_reduce": lambda cl, d, c: mpi_reduce(cl, d),
    "hzccl_reduce": hzccl_reduce,
    "hzccl_reduce_direct": hzccl_reduce_direct,
    "mpi_bcast": lambda cl, d, c: mpi_bcast(cl, d[0]),
    "compressed_bcast": lambda cl, d, c: compressed_bcast(cl, d[0], c),
}

RANK_COUNTS = (2, 4, 8)


def make_data(n: int) -> list[np.ndarray]:
    rng = np.random.default_rng(0x5EED0 + n)
    return [
        np.cumsum(rng.normal(0, 0.05, N_ELEMENTS)).astype(np.float32)
        for _ in range(n)
    ]


def main() -> None:
    FIXTURE_DIR.mkdir(exist_ok=True)
    for n in RANK_COUNTS:
        data = make_data(n)
        for name, op in OPS.items():
            cluster = SimCluster(n, network=NET)
            result = op(cluster, data, CONFIG)
            payload: dict[str, np.ndarray] = {
                "bytes_on_wire": np.int64(result.bytes_on_wire),
            }
            for i, out in enumerate(result.outputs):
                if out is None:
                    continue  # non-root ranks of rooted ops
                payload[f"out_{i}"] = out
            path = FIXTURE_DIR / f"{name}_n{n}.npz"
            np.savez_compressed(path, **payload)
            print(f"wrote {path.name}: {sorted(payload)}")


if __name__ == "__main__":
    main()
