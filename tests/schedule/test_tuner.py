"""Unit tests for the schedule autotuner core (keys, candidates, scoring).

The tuner's contracts, smallest first: canonical key/slug strings
round-trip through their parsers, candidate enumeration is complete and
deterministic for every rank-count/placement shape, scoring is an
honest argmin with the documented roughness re-rating, and the
table → memo → enumeration lookup chain resolves in that order.
"""

import numpy as np
import pytest

from repro.core.cost_model import PAPER_BROADWELL
from repro.runtime import (
    DragonflyNetwork,
    FatTreeNetwork,
    NetworkModel,
    NodeMap,
    TorusNetwork,
)
from repro.schedule.tuner import (
    PIPELINE_CHUNKS,
    PIPELINE_MAX_RANKS,
    ROUGH_RATIO,
    _ENTRY_MEMO,
    _LRU,
    Candidate,
    TableEntry,
    TuningKey,
    TuningTableError,
    TuningTable,
    bucket_bytes,
    classify_roughness,
    enumerate_candidates,
    fabric_name,
    lookup_entry,
    rates_for_roughness,
    score_candidate,
    size_bucket,
    tune_point,
)

RATES = PAPER_BROADWELL


# --------------------------------------------------------------------- #
# keys and slugs
# --------------------------------------------------------------------- #
def test_tuning_key_canonical_round_trip():
    key = TuningKey("allreduce", "float32", 22, 256, "torus", "smooth")
    assert key.canonical() == "allreduce/float32/b22/n256/torus/smooth"
    assert TuningKey.parse(key.canonical()) == key


@pytest.mark.parametrize(
    "text",
    [
        "",
        "allreduce/float32/b22/n256/torus",          # missing axis
        "allreduce/float32/22/n256/torus/smooth",    # bucket marker lost
        "allreduce/float32/b22/n256/torus/silky",    # unknown roughness
        "allgather/float32/b22/n256/torus/smooth",   # unsupported op
        "allreduce/float32/b-3/n256/torus/smooth",   # negative bucket
    ],
)
def test_malformed_keys_rejected(text):
    with pytest.raises(TuningTableError):
        TuningKey.parse(text)


def test_size_bucket_is_floor_log2():
    assert size_bucket(1) == 0
    assert size_bucket(64 << 10) == 16
    assert size_bucket((64 << 10) + 1) == 16
    assert size_bucket((128 << 10) - 1) == 16
    assert size_bucket(128 << 10) == 17
    assert bucket_bytes(size_bucket(4 << 20)) == 4 << 20
    with pytest.raises(ValueError):
        size_bucket(0)


def test_fabric_name_maps_congestion_laws():
    assert fabric_name(TorusNetwork()) == "torus"
    assert fabric_name(DragonflyNetwork()) == "dragonfly"
    assert fabric_name(FatTreeNetwork()) == "fattree"
    assert fabric_name(NetworkModel()) == "base"


@pytest.mark.parametrize(
    "cand",
    [
        Candidate("ring", "plain"),
        Candidate("ring", "hz"),
        Candidate("rabenseifner", "hz"),
        Candidate("pipelined", "hz", chunks=4),
        Candidate("hier-ring", "plain", ranks_per_node=8),
        Candidate("hier-rabenseifner", "hz", ranks_per_node=16),
    ],
)
def test_candidate_slug_round_trip(cand):
    assert Candidate.parse(cand.slug()) == cand


@pytest.mark.parametrize(
    "bad",
    [
        lambda: Candidate("warp", "hz"),
        lambda: Candidate("ring", "doc"),
        lambda: Candidate("pipelined", "plain", chunks=2),   # hz-only family
        lambda: Candidate("pipelined", "hz", chunks=1),      # not pipelined
        lambda: Candidate("ring", "hz", chunks=2),           # chunking flat
        lambda: Candidate("hier-ring", "hz"),                # placement lost
        lambda: Candidate("ring", "hz", ranks_per_node=8),   # placement flat
        lambda: Candidate.parse("pipelined-hz"),
        lambda: Candidate.parse("hier-ring-hz"),
    ],
)
def test_invalid_candidates_rejected(bad):
    with pytest.raises(TuningTableError):
        bad()


# --------------------------------------------------------------------- #
# enumeration
# --------------------------------------------------------------------- #
def test_enumeration_flat_power_of_two():
    slugs = {c.slug() for c in enumerate_candidates(8)}
    assert slugs == {
        "ring-plain", "ring-hz",
        "pipelined2-hz", "pipelined4-hz",
        "rabenseifner-plain", "rabenseifner-hz",
    }


def test_enumeration_drops_rabenseifner_off_power_of_two():
    slugs = {c.slug() for c in enumerate_candidates(6)}
    assert "rabenseifner-plain" not in slugs
    assert "rabenseifner-hz" not in slugs
    assert "ring-plain" in slugs


def test_enumeration_caps_pipelined_at_max_ranks():
    below = {c.slug() for c in enumerate_candidates(PIPELINE_MAX_RANKS)}
    above = {c.slug() for c in enumerate_candidates(PIPELINE_MAX_RANKS * 2)}
    for chunks in PIPELINE_CHUNKS:
        assert f"pipelined{chunks}-hz" in below
        assert f"pipelined{chunks}-hz" not in above


def test_enumeration_adds_hierarchical_with_placement():
    nodemap = NodeMap.regular(16, 4)
    slugs = {c.slug() for c in enumerate_candidates(16, nodemap)}
    assert "hier-ring4-plain" in slugs
    assert "hier-ring4-hz" in slugs
    assert "hier-rabenseifner4-hz" in slugs  # 4 nodes: power of two
    # a 1-rank-per-node placement degenerates to the flat families
    assert not any(
        c.hierarchical for c in enumerate_candidates(16, NodeMap.regular(16, 1))
    )
    # 3 nodes: hier-ring only
    slugs6 = {c.slug() for c in enumerate_candidates(6, NodeMap.regular(6, 2))}
    assert "hier-ring2-hz" in slugs6
    assert not any(s.startswith("hier-rabenseifner") for s in slugs6)


def test_enumeration_rejects_mismatched_nodemap():
    with pytest.raises(ValueError):
        enumerate_candidates(8, NodeMap.regular(16, 4))
    with pytest.raises(ValueError):
        enumerate_candidates(8, op="allgather")


# --------------------------------------------------------------------- #
# roughness
# --------------------------------------------------------------------- #
def test_classify_roughness_separates_smooth_from_noise():
    smooth = np.sin(np.linspace(0, 20, 8192)).astype(np.float32)
    rough = np.random.default_rng(3).normal(0, 1.0, 8192).astype(np.float32)
    assert classify_roughness(smooth, 1e-3) == "smooth"
    assert classify_roughness(rough, 1e-6) == "rough"
    assert classify_roughness(np.ones(1, np.float32), 1e-3) == "smooth"
    with pytest.raises(ValueError):
        classify_roughness(smooth, 0.0)


def test_rough_rerating_clamps_ratio():
    assert rates_for_roughness(RATES, "smooth").ratio == RATES.ratio
    assert rates_for_roughness(RATES, "rough").ratio == ROUGH_RATIO
    with pytest.raises(ValueError):
        rates_for_roughness(RATES, "gritty")


def test_rough_data_never_scores_hz_cheaper_than_smooth():
    net = TorusNetwork()
    for cand in (Candidate("ring", "hz"), Candidate("rabenseifner", "hz")):
        smooth = score_candidate(cand, 8, 4 << 20, RATES, net, "smooth")
        rough = score_candidate(cand, 8, 4 << 20, RATES, net, "rough")
        assert rough > smooth
    plain = Candidate("ring", "plain")
    assert score_candidate(plain, 8, 4 << 20, RATES, net, "rough") == (
        score_candidate(plain, 8, 4 << 20, RATES, net, "smooth")
    )


# --------------------------------------------------------------------- #
# tune_point
# --------------------------------------------------------------------- #
def test_tune_point_is_argmin_of_the_cost_map():
    nodemap = NodeMap.regular(8, 4)
    key, entry, costs = tune_point(
        8, 4 << 20, TorusNetwork(), "smooth", RATES, nodemap
    )
    assert key == TuningKey("allreduce", "float32", 22, 8, "torus", "smooth")
    assert set(costs) == {c.slug() for c in enumerate_candidates(8, nodemap)}
    assert entry.cost_s == min(costs.values())
    assert costs[entry.pick.slug()] == entry.cost_s
    flat = {
        s: c for s, c in costs.items() if not Candidate.parse(s).hierarchical
    }
    assert not entry.flat_pick.hierarchical
    assert entry.flat_cost_s == min(flat.values())
    assert entry.cost_s <= entry.flat_cost_s


def test_tune_point_without_placement_has_no_hier_candidates():
    _, entry, costs = tune_point(8, 4 << 20, TorusNetwork(), "smooth", RATES)
    assert not any(Candidate.parse(s).hierarchical for s in costs)
    assert entry.pick == entry.flat_pick


def test_table_entry_validation():
    ring = Candidate("ring", "hz")
    hier = Candidate("hier-ring", "hz", ranks_per_node=4)
    with pytest.raises(TuningTableError):
        TableEntry(pick=ring, cost_s=-1.0, flat_pick=ring, flat_cost_s=1.0)
    with pytest.raises(TuningTableError):
        TableEntry(pick=ring, cost_s=1.0, flat_pick=hier, flat_cost_s=1.0)
    with pytest.raises(TuningTableError):
        TableEntry.from_dict({"pick": "ring-hz"})
    with pytest.raises(TuningTableError):
        TableEntry.from_dict("ring-hz")


# --------------------------------------------------------------------- #
# lookup chain
# --------------------------------------------------------------------- #
def test_lookup_prefers_table_then_memo_then_enumerates():
    net = TorusNetwork()
    key, entry, _ = tune_point(4, 1 << 20, net, "smooth", RATES)
    table = TuningTable({key: entry})

    got, source = lookup_entry(key, net, RATES, table=table)
    assert source == "table" and got == entry

    _ENTRY_MEMO.clear()
    miss_key = TuningKey("allreduce", "float32", 19, 4, "torus", "smooth")
    got1, source1 = lookup_entry(miss_key, net, RATES, table=table)
    got2, source2 = lookup_entry(miss_key, net, RATES, table=table)
    assert (source1, source2) == ("enumerated", "memo")
    assert got1 == got2
    assert got1.cost_s > 0


def test_lru_evicts_least_recently_used():
    lru = _LRU(maxsize=2)
    lru.put("a", 1)
    lru.put("b", 2)
    assert lru.get("a") == 1      # refresh a
    lru.put("c", 3)               # evicts b
    assert lru.get("b") is None
    assert lru.get("a") == 1 and lru.get("c") == 3
    assert len(lru) == 2
    with pytest.raises(ValueError):
        _LRU(maxsize=0)
