"""Hypothesis property tests for the persisted :class:`TuningTable`.

Three contracts the on-disk format must keep for tables to be shareable
artefacts (committed to repos, merged across partial sweeps, read by
future versions):

* **byte-stable round-trip** — ``save → load → save`` reproduces the
  exact bytes (sorted keys, canonical floats, trailing newline), so
  re-serialising a table never dirties version control;
* **merge algebra** — ``merge`` is commutative, idempotent, and
  associative on arbitrary overlapping/disjoint key sets (conflicts
  resolve by lower modelled cost, slug order on exact ties — an
  order-independent rule);
* **fail-clean loading** — corrupt documents and *future* schema
  versions raise :class:`TuningTableError` without constructing any
  partial table state.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schedule.tuner import (
    SCHEMA_VERSION,
    Candidate,
    TableEntry,
    TuningKey,
    TuningTable,
    TuningTableError,
)

# -- strategies -------------------------------------------------------- #
_flat_candidates = st.sampled_from(
    [
        Candidate("ring", "plain"),
        Candidate("ring", "hz"),
        Candidate("rabenseifner", "hz"),
        Candidate("pipelined", "hz", chunks=2),
        Candidate("pipelined", "hz", chunks=4),
    ]
)
_candidates = st.one_of(
    _flat_candidates,
    st.sampled_from(
        [
            Candidate("hier-ring", "hz", ranks_per_node=8),
            Candidate("hier-rabenseifner", "plain", ranks_per_node=4),
        ]
    ),
)
_costs = st.floats(
    min_value=1e-9, max_value=1e3, allow_nan=False, allow_infinity=False
)
_keys = st.builds(
    TuningKey,
    op=st.just("allreduce"),
    dtype=st.sampled_from(["float32", "float64"]),
    bucket=st.integers(min_value=10, max_value=30),
    n_ranks=st.sampled_from([4, 8, 64, 256, 1024]),
    fabric=st.sampled_from(["torus", "dragonfly", "fattree", "base"]),
    roughness=st.sampled_from(["smooth", "rough"]),
)
_entries = st.builds(
    lambda pick, cost, flat_pick, flat_cost: TableEntry(
        pick=pick,
        cost_s=min(cost, flat_cost),
        flat_pick=flat_pick,
        flat_cost_s=max(cost, flat_cost),
    ),
    _candidates,
    _costs,
    _flat_candidates,
    _costs,
)
_tables = st.dictionaries(_keys, _entries, max_size=8).map(TuningTable)


# -- round-trip -------------------------------------------------------- #
@given(_tables)
@settings(max_examples=50, deadline=None)
def test_round_trip_is_byte_stable(table):
    text = table.dumps()
    reloaded = TuningTable.loads(text)
    assert reloaded == table
    assert reloaded.dumps() == text


@given(table=_tables)
@settings(max_examples=10, deadline=None)
def test_save_load_save_on_disk_is_byte_stable(table, tmp_path_factory):
    path = tmp_path_factory.mktemp("tables") / "t.json"
    table.save(str(path))
    first = path.read_bytes()
    TuningTable.load(str(path)).save(str(path))
    assert path.read_bytes() == first


# -- merge algebra ----------------------------------------------------- #
@given(_tables, _tables)
@settings(max_examples=50, deadline=None)
def test_merge_commutes(a, b):
    assert a.merge(b).dumps() == b.merge(a).dumps()


@given(_tables)
@settings(max_examples=25, deadline=None)
def test_merge_is_idempotent(a):
    assert a.merge(a) == a


@given(_tables, _tables, _tables)
@settings(max_examples=25, deadline=None)
def test_merge_is_associative(a, b, c):
    assert a.merge(b).merge(c).dumps() == a.merge(b.merge(c)).dumps()


@given(_tables, _tables)
@settings(max_examples=50, deadline=None)
def test_merge_unions_keys_and_resolves_by_cost(a, b):
    merged = a.merge(b)
    assert set(merged.entries) == set(a.entries) | set(b.entries)
    for key, entry in merged.entries.items():
        ea, eb = a.entries.get(key), b.entries.get(key)
        assert entry in (ea, eb)
        if ea is not None and eb is not None:
            assert entry.cost_s == min(ea.cost_s, eb.cost_s)


# -- fail-clean loading ------------------------------------------------ #
def _valid_doc() -> dict:
    key = TuningKey("allreduce", "float32", 22, 8, "torus", "smooth")
    entry = TableEntry(
        pick=Candidate("ring", "hz"),
        cost_s=1.0,
        flat_pick=Candidate("ring", "hz"),
        flat_cost_s=1.0,
    )
    return json.loads(TuningTable({key: entry}).dumps())


@pytest.mark.parametrize(
    "mutate",
    [
        lambda doc: doc.pop("schema"),
        lambda doc: doc.update(schema=SCHEMA_VERSION + 1),   # future version
        lambda doc: doc.update(schema="1"),
        lambda doc: doc.update(schema=0),
        lambda doc: doc.update(entries=[1, 2]),
        lambda doc: doc["entries"].update({"not/a/key": {"pick": "ring-hz"}}),
        lambda doc: next(iter(doc["entries"].values())).update(pick="warp-hz"),
        lambda doc: next(iter(doc["entries"].values())).update(cost_s=-2.0),
        lambda doc: next(iter(doc["entries"].values())).pop("flat_pick"),
    ],
    ids=[
        "no-schema", "future-schema", "string-schema", "zero-schema",
        "entries-not-object", "bad-key", "bad-slug", "negative-cost",
        "missing-field",
    ],
)
def test_corrupt_documents_fail_clean(mutate):
    doc = _valid_doc()
    mutate(doc)
    with pytest.raises(TuningTableError):
        TuningTable.loads(json.dumps(doc))


def test_non_json_and_non_object_fail_clean():
    with pytest.raises(TuningTableError):
        TuningTable.loads("{not json")
    with pytest.raises(TuningTableError):
        TuningTable.loads("[1, 2, 3]")
    with pytest.raises(TuningTableError):
        TuningTable.load("/nonexistent/tuning-table.json")


def test_future_schema_error_names_both_versions():
    doc = _valid_doc()
    doc["schema"] = SCHEMA_VERSION + 7
    with pytest.raises(TuningTableError) as err:
        TuningTable.loads(json.dumps(doc))
    assert str(SCHEMA_VERSION + 7) in str(err.value)
    assert str(SCHEMA_VERSION) in str(err.value)
