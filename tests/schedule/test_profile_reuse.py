"""Regression: candidate enumeration must not re-profile schedules.

``schedule_cost`` builds one structural profile per (schedule,
discipline) — but the profile cache holds only a *weak* reference to the
schedule, so a tuning loop that let its candidate schedules die between
scored message sizes would rebuild every profile at every size (the bug
this file pins: enumeration used to re-profile identical candidate
schedules).  The fix is :func:`candidate_stages`: an ``lru_cache`` over
``(candidate, n, nodemap)`` whose cached stage tuples pin strong
references to the generator schedules, keeping their profiles alive for
the whole sweep.

The test counts actual profile builds through
:func:`repro.schedule.cost.profile_stats` while scoring a full grid
point fan (6 sizes × 2 roughness classes × every candidate): builds may
not exceed the number of *distinct* (schedule, discipline) pairs, and
the second fan over the same shapes must build nothing at all.
"""

from repro.core.cost_model import PAPER_BROADWELL
from repro.runtime import NodeMap, TorusNetwork
from repro.schedule.cost import profile_stats
from repro.schedule.tuner import (
    candidate_stages,
    enumerate_candidates,
    tune_point,
)

# unusual shapes so the memoised generators start cold in this module
N = 12
NODEMAP = NodeMap.regular(N, 4)
SIZES = tuple((1 << 16) * (4**i) for i in range(6))   # 64 KB … 64 MB
NET = TorusNetwork()


def _distinct_stage_pairs() -> int:
    pairs = set()
    for cand in enumerate_candidates(N, NODEMAP):
        for sched, disc in candidate_stages(
            cand, N, NODEMAP if cand.hierarchical else None
        ):
            pairs.add((id(sched), disc.name))
    return len(pairs)


def test_enumeration_profiles_each_stage_pair_once():
    budget = _distinct_stage_pairs()
    before = profile_stats()["builds"]
    for size in SIZES:
        for roughness in ("smooth", "rough"):
            tune_point(N, size, NET, roughness, PAPER_BROADWELL, NODEMAP)
    built = profile_stats()["builds"] - before
    # one build per distinct (schedule, discipline) pair — NOT per scored
    # size/roughness combination (which would be 12× that)
    assert built <= budget, (
        f"{built} profile builds for {budget} distinct stage pairs: "
        "candidate schedules are being re-profiled during enumeration"
    )

    # …and a second identical fan is all cache hits
    before_builds = profile_stats()["builds"]
    before_hits = profile_stats()["hits"]
    for size in SIZES:
        for roughness in ("smooth", "rough"):
            tune_point(N, size, NET, roughness, PAPER_BROADWELL, NODEMAP)
    assert profile_stats()["builds"] == before_builds
    assert profile_stats()["hits"] > before_hits


def test_candidate_stages_returns_identical_objects():
    """The hoist itself: repeated calls hand back the *same* schedule
    objects (identity, not just equality), which is what keeps the
    id-keyed weak-ref profile cache warm."""
    for cand in enumerate_candidates(N, NODEMAP):
        nm = NODEMAP if cand.hierarchical else None
        first = candidate_stages(cand, N, nm)
        second = candidate_stages(cand, N, nm)
        for (s1, d1), (s2, d2) in zip(first, second):
            assert s1 is s2
            assert d1 is d2
