"""Aggregation service: batching equivalence, backpressure, lifecycle.

The load-bearing promise (DESIGN.md §16): a batching window that
coalesces ``k`` same-shaped sessions into one fused ``batched-reduce``
plan changes *nothing* about any session's bytes — the fused fold is
exact in the integer domain, so batched outputs are bit-identical to
``k`` independent ``reduce`` calls.  The rest is service mechanics:
bounded admission, per-tenant quotas, window flushing, cancellation
withdrawal, drain/stop.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import HZCCL, CollectiveConfig
from repro.obs.metrics import METRICS, metrics_enabled
from repro.runtime.faults import FaultPlan
from repro.service import (
    AggregationService,
    BatchKey,
    ServiceClosed,
    ServiceSaturated,
    SessionResult,
    TenantQuotaExceeded,
)


def _session_data(n_ranks: int, elements: int, seed: int) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    return [
        np.cumsum(rng.normal(0, 0.03, elements)).astype(np.float32)
        for _ in range(n_ranks)
    ]


def _submit_all(svc: AggregationService, batches, **kw):
    """Gather k concurrent submits (they must share one window)."""

    async def go():
        async with svc:
            return await asyncio.gather(
                *(svc.submit(b, **kw) for b in batches)
            )

    return asyncio.run(go())


class TestBatchingEquivalence:
    @settings(max_examples=8, deadline=None)
    @given(
        k=st.integers(min_value=1, max_value=5),
        n_ranks=st.integers(min_value=2, max_value=5),
        elements=st.integers(min_value=97, max_value=700),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_batched_bit_identical_to_independent_reduces(
        self, k, n_ranks, elements, seed
    ):
        batches = [
            _session_data(n_ranks, elements, seed + 17 * s) for s in range(k)
        ]
        results = _submit_all(
            AggregationService(window_s=0.05, max_batch=k), batches
        )
        assert [r.batched for r in results] == [k] * k
        lib = HZCCL()
        for s, r in enumerate(results):
            independent = lib.reduce(batches[s]).outputs[0]
            assert np.array_equal(r.output, independent)

    def test_mixed_shapes_never_share_a_batch(self):
        small = _session_data(3, 128, 1)
        large = _session_data(3, 256, 2)
        results = _submit_all(
            AggregationService(window_s=0.05, max_batch=8), [small, large]
        )
        assert [r.batched for r in results] == [1, 1]
        lib = HZCCL()
        assert np.array_equal(r0 := results[0].output, lib.reduce(small).outputs[0])
        assert r0.size == 128 and results[1].output.size == 256

    def test_batch_key_carries_shape_not_just_elements(self):
        flat = [np.zeros(64, dtype=np.float32)] * 2
        grid = [np.zeros((2, 32), dtype=np.float32)] * 2
        assert BatchKey.of(flat, 0) != BatchKey.of(grid, 0)

    def test_max_batch_one_disables_coalescing(self):
        batches = [_session_data(2, 100, s) for s in range(3)]
        results = _submit_all(
            AggregationService(window_s=0.05, max_batch=1), batches
        )
        assert [r.batched for r in results] == [1, 1, 1]

    def test_degraded_batch_falls_back_exact(self):
        config = CollectiveConfig(
            fault_plan=FaultPlan(seed=1, corrupt_rate=0.9)
        )
        batches = [_session_data(4, 300, 7 + s) for s in range(2)]
        results = _submit_all(
            AggregationService(config, window_s=0.05, max_batch=2), batches
        )
        assert all(r.degraded for r in results)
        plain = HZCCL()  # fault-free plain reference
        for s, r in enumerate(results):
            exact = plain.reduce(batches[s], kernel="mpi").outputs[0]
            np.testing.assert_array_equal(r.output, exact)


class TestAdmissionControl:
    def test_backpressure_rejects_above_max_pending(self):
        data = _session_data(2, 100, 0)

        async def go():
            svc = AggregationService(
                window_s=0.05, max_batch=8, max_pending=2
            )
            async with svc:
                outcomes = await asyncio.gather(
                    *(svc.submit(data) for _ in range(4)),
                    return_exceptions=True,
                )
            return svc, outcomes

        svc, outcomes = asyncio.run(go())
        rejected = [o for o in outcomes if isinstance(o, ServiceSaturated)]
        served = [o for o in outcomes if isinstance(o, SessionResult)]
        assert len(rejected) == 2 and len(served) == 2
        assert svc.stats()["rejected_backpressure"] == 2
        assert svc.pending == 0  # released on completion

    def test_tenant_quota_is_per_tenant(self):
        data = _session_data(2, 100, 0)

        async def go():
            svc = AggregationService(
                window_s=0.05, max_batch=8, tenant_quota=1
            )
            async with svc:
                outcomes = await asyncio.gather(
                    svc.submit(data, tenant="a"),
                    svc.submit(data, tenant="a"),
                    svc.submit(data, tenant="b"),
                    return_exceptions=True,
                )
            return svc, outcomes

        svc, outcomes = asyncio.run(go())
        assert sum(isinstance(o, TenantQuotaExceeded) for o in outcomes) == 1
        assert sum(isinstance(o, SessionResult) for o in outcomes) == 2
        assert svc.stats()["rejected_quota"] == 1

    def test_rejected_session_occupies_no_queue_space(self):
        data = _session_data(2, 100, 0)

        async def go():
            svc = AggregationService(window_s=0.05, max_pending=1)
            async with svc:
                first = asyncio.ensure_future(svc.submit(data))
                await asyncio.sleep(0)  # let it admit
                with pytest.raises(ServiceSaturated):
                    await svc.submit(data)
                assert svc.pending == 1  # the refusal didn't count
                return await first

        result = asyncio.run(go())
        assert isinstance(result, SessionResult)

    def test_bad_root_rejected_at_admission(self):
        data = _session_data(2, 64, 0)

        async def go():
            async with AggregationService() as svc:
                with pytest.raises(IndexError, match="root 5 out of range"):
                    await svc.submit(data, root=5)

        asyncio.run(go())

    def test_constructor_validates_bounds(self):
        with pytest.raises(ValueError):
            AggregationService(max_batch=0)
        with pytest.raises(ValueError):
            AggregationService(max_pending=0)
        with pytest.raises(ValueError):
            AggregationService(tenant_quota=0)


class TestLifecycle:
    def test_drain_flushes_an_open_window_early(self):
        data = _session_data(2, 100, 0)

        async def go():
            svc = AggregationService(window_s=60.0, max_batch=8)
            task = asyncio.ensure_future(svc.submit(data))
            await asyncio.sleep(0)
            await asyncio.wait_for(svc.drain(), timeout=10)
            return await task

        result = asyncio.run(go())
        assert result.batched == 1  # served without waiting the window

    def test_cancelled_session_is_skipped_not_fatal(self):
        batches = [_session_data(2, 100, s) for s in range(3)]

        async def go():
            svc = AggregationService(window_s=0.2, max_batch=8)
            tasks = [
                asyncio.ensure_future(svc.submit(b)) for b in batches
            ]
            await asyncio.sleep(0)
            tasks[1].cancel()
            done = await asyncio.gather(*tasks, return_exceptions=True)
            await svc.stop()
            return svc, done

        svc, done = asyncio.run(go())
        served = [o for o in done if isinstance(o, SessionResult)]
        assert len(served) == 2
        assert [r.batched for r in served] == [2, 2]
        assert isinstance(done[1], asyncio.CancelledError)
        assert svc.stats()["cancelled"] == 1
        assert svc.pending == 0

    def test_submit_after_stop_raises_closed(self):
        data = _session_data(2, 64, 0)

        async def go():
            svc = AggregationService()
            await svc.stop()
            with pytest.raises(ServiceClosed):
                await svc.submit(data)

        asyncio.run(go())

    def test_stop_is_idempotent(self):
        async def go():
            svc = AggregationService()
            await svc.stop()
            await svc.stop()
            await svc.drain()

        asyncio.run(go())

    def test_max_batch_flushes_before_the_window(self):
        batches = [_session_data(2, 100, s) for s in range(2)]

        async def go():
            svc = AggregationService(window_s=60.0, max_batch=2)
            results = await asyncio.gather(
                *(svc.submit(b) for b in batches)
            )
            await svc.stop()
            return results

        results = asyncio.run(asyncio.wait_for(go(), timeout=30))
        assert [r.batched for r in results] == [2, 2]


class TestObservability:
    def test_service_counters_and_tenant_attribution(self):
        batches = [_session_data(2, 100, s) for s in range(3)]
        with metrics_enabled():
            _submit_all(
                AggregationService(window_s=0.05, max_batch=8),
                batches,
                tenant="team-a",
            )
            assert METRICS.counter("service.submitted") == 3
            assert METRICS.counter("service.tenant.team-a.submitted") == 3
            assert METRICS.counter("service.batches") == 1
            assert METRICS.counter("service.sessions_batched") == 3
            assert METRICS.counter("service.wire_bytes") > 0
            hist = METRICS.histogram("service.batch.sessions")
            assert hist.count == 1 and hist.vmax == 3

    def test_stats_reports_plan_cache(self):
        svc = AggregationService()
        stats = svc.stats()
        assert {"hits", "misses", "hit_rate", "size"} <= set(
            stats["plan_cache"]
        )
