"""Tests for the asyncio aggregation service."""
